//! Configuration of the simulated MPC cluster.

use crate::error::MpcError;

/// Parameters of a simulated MPC cluster (paper, Section 1.1.1).
///
/// A cluster has `num_machines` machines, each with `words_per_machine`
/// words of memory. One *word* is `Θ(log n)` bits and holds a vertex id or
/// an edge endpoint; an edge costs two words.
///
/// The paper's regime of interest is `S ∈ Θ(n)` (or `Θ(n / polylog n)`)
/// with `S · m = Θ(N)` where `N` is the input size; the convenience
/// constructor [`MpcConfig::near_linear`] captures exactly that.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::MpcConfig;
/// // A graph with 10^4 vertices and ~10^5 edges: S = 4n words.
/// let cfg = MpcConfig::near_linear(10_000, 100_000, 4.0)?;
/// assert_eq!(cfg.words_per_machine(), 40_000);
/// assert!(cfg.num_machines() >= 5);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpcConfig {
    words_per_machine: usize,
    num_machines: usize,
}

impl MpcConfig {
    /// Creates a configuration with explicit machine count and budget.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InvalidConfig`] if either parameter is zero.
    pub fn new(num_machines: usize, words_per_machine: usize) -> Result<Self, MpcError> {
        if num_machines == 0 {
            return Err(MpcError::InvalidConfig {
                message: "need at least one machine".into(),
            });
        }
        if words_per_machine == 0 {
            return Err(MpcError::InvalidConfig {
                message: "words_per_machine must be positive".into(),
            });
        }
        Ok(MpcConfig {
            words_per_machine,
            num_machines,
        })
    }

    /// The paper's regime: `S = space_factor · n` words per machine, with
    /// enough machines for the total memory to hold the input
    /// (`S · m ≥ 2 · (2m_edges)`, i.e. a constant factor above the edge
    /// list size), and at least two machines.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InvalidConfig`] if `n == 0`, or
    /// `space_factor <= 0` or non-finite.
    pub fn near_linear(n: usize, num_edges: usize, space_factor: f64) -> Result<Self, MpcError> {
        if n == 0 {
            return Err(MpcError::InvalidConfig {
                message: "graph must have vertices".into(),
            });
        }
        if !space_factor.is_finite() || space_factor <= 0.0 {
            return Err(MpcError::InvalidConfig {
                message: format!("space_factor must be positive, got {space_factor}"),
            });
        }
        let words = ((n as f64) * space_factor).ceil() as usize;
        let words = words.max(1);
        let input_words = 2 * num_edges;
        // Total cluster memory ≥ 2× the input, mirroring S·m = Θ(N).
        let machines = (2 * input_words).div_ceil(words).max(2);
        MpcConfig::new(machines, words)
    }

    /// Per-machine memory budget in words.
    pub fn words_per_machine(&self) -> usize {
        self.words_per_machine
    }

    /// Number of machines `m`.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Total cluster memory `S · m` in words.
    pub fn total_words(&self) -> usize {
        self.words_per_machine * self.num_machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_construction() {
        let c = MpcConfig::new(8, 1000).unwrap();
        assert_eq!(c.num_machines(), 8);
        assert_eq!(c.words_per_machine(), 1000);
        assert_eq!(c.total_words(), 8000);
    }

    #[test]
    fn rejects_zeroes() {
        assert!(MpcConfig::new(0, 10).is_err());
        assert!(MpcConfig::new(10, 0).is_err());
    }

    #[test]
    fn near_linear_holds_input() {
        let c = MpcConfig::near_linear(1000, 50_000, 2.0).unwrap();
        assert_eq!(c.words_per_machine(), 2000);
        assert!(c.total_words() >= 2 * 2 * 50_000);
    }

    #[test]
    fn near_linear_minimum_two_machines() {
        let c = MpcConfig::near_linear(100, 1, 10.0).unwrap();
        assert!(c.num_machines() >= 2);
    }

    #[test]
    fn near_linear_rejects_bad_params() {
        assert!(MpcConfig::near_linear(0, 10, 1.0).is_err());
        assert!(MpcConfig::near_linear(10, 10, 0.0).is_err());
        assert!(MpcConfig::near_linear(10, 10, f64::NAN).is_err());
    }
}
