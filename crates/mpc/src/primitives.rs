//! Constant-round MPC primitives after Goodrich–Sitchinava–Zhang
//! \[GSZ11\]: the "standard techniques" the paper invokes for the
//! bookkeeping steps of its algorithms (sorting, aggregation, prefix
//! sums).
//!
//! Each primitive executes the real computation locally while charging the
//! model the rounds and per-machine loads the distributed protocol would
//! use, and fails with [`MpcError::MemoryExceeded`] when the input cannot
//! fit the cluster — the same meter-don't-trust contract as the rest of
//! the simulator.

use crate::cluster::Cluster;
use crate::error::MpcError;

/// Splits `n` items into per-machine chunk lengths (`ceil(n/m)` each, last
/// chunk short).
fn chunk_lengths(n: usize, machines: usize) -> Vec<usize> {
    let chunk = n.div_ceil(machines.max(1)).max(1);
    let mut lens = Vec::new();
    let mut left = n;
    while left > 0 {
        let take = left.min(chunk);
        lens.push(take);
        left -= take;
    }
    lens
}

/// Distributed sample sort \[GSZ11\]: sorts `items` across the cluster in
/// three metered rounds (sample → splitters → route), returning the
/// sorted vector.
///
/// Round structure and loads:
/// 1. every machine ships `O(m)` samples to machine 0;
/// 2. machine 0 broadcasts `m − 1` splitters;
/// 3. items are routed to their splitter bucket; each target machine's
///    received words are charged and checked.
///
/// # Errors
///
/// [`MpcError::MemoryExceeded`] if a bucket overflows its machine (input
/// too skewed or cluster too small).
///
/// # Examples
///
/// ```
/// use mmvc_mpc::{mpc_sort, Cluster, MpcConfig, Substrate};
/// let mut cluster = Cluster::new(MpcConfig::new(8, 4096)?);
/// let items: Vec<u64> = (0..10_000).rev().collect();
/// let sorted = mpc_sort(&mut cluster, &items)?;
/// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(cluster.rounds(), 3);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
pub fn mpc_sort<T: Ord + Clone>(cluster: &mut Cluster, items: &[T]) -> Result<Vec<T>, MpcError> {
    let m = cluster.config().num_machines();
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let lens = chunk_lengths(n, m);

    // Round 1: each machine draws ~m evenly spaced local samples and ships
    // them to machine 0. (Deterministic regular sampling is the
    // de-randomized variant; the load is what matters to the model.)
    let mut samples: Vec<T> = Vec::new();
    let mut offset = 0usize;
    for &len in &lens {
        let chunk = &items[offset..offset + len];
        let step = (len / m.max(1)).max(1);
        for i in (0..len).step_by(step) {
            samples.push(chunk[i].clone());
        }
        offset += len;
    }
    cluster.round(|r| r.receive(0, samples.len()))?;

    // Machine 0 picks m-1 splitters; round 2 broadcasts them.
    samples.sort();
    let splitters: Vec<T> = (1..m)
        .map(|i| samples[(i * samples.len()) / m].clone())
        .collect();
    cluster.round(|r| r.broadcast(splitters.len().max(1)))?;

    // Round 3: route each item to its bucket; charge target loads.
    let mut buckets: Vec<Vec<T>> = vec![Vec::new(); m];
    for item in items {
        let b = splitters.partition_point(|s| s <= item);
        buckets[b].push(item.clone());
    }
    cluster.round(|r| {
        for (machine, bucket) in buckets.iter().enumerate() {
            r.receive(machine, bucket.len())?;
        }
        Ok(())
    })?;

    // Local sorts and concatenation.
    let mut out = Vec::with_capacity(n);
    for mut bucket in buckets {
        bucket.sort();
        out.append(&mut bucket);
    }
    Ok(out)
}

/// Distributed prefix sums: returns `out[i] = values[0] + … + values[i]`
/// in two metered rounds (local sums to machine 0, offsets broadcast
/// back).
///
/// # Errors
///
/// [`MpcError::MemoryExceeded`] if per-machine chunks exceed the budget.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::{mpc_prefix_sum, Cluster, MpcConfig};
/// let mut cluster = Cluster::new(MpcConfig::new(4, 1024)?);
/// let sums = mpc_prefix_sum(&mut cluster, &[1, 2, 3, 4])?;
/// assert_eq!(sums, vec![1, 3, 6, 10]);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
pub fn mpc_prefix_sum(cluster: &mut Cluster, values: &[u64]) -> Result<Vec<u64>, MpcError> {
    let m = cluster.config().num_machines();
    let n = values.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let lens = chunk_lengths(n, m);
    // Charge holding the chunks + shipping one partial sum per machine.
    cluster.round(|r| {
        for (machine, &len) in lens.iter().enumerate() {
            r.receive(machine, len)?;
        }
        r.receive(0, lens.len())
    })?;
    // Machine 0 computes chunk offsets; broadcast.
    cluster.round(|r| r.broadcast(lens.len()))?;

    let mut out = Vec::with_capacity(n);
    let mut running = 0u64;
    for &v in values {
        running += v;
        out.push(running);
    }
    Ok(out)
}

/// Distributed aggregation: sums `value` per `key` in one metered shuffle
/// round (hash-partition by key), returning `(key, total)` pairs sorted by
/// key.
///
/// # Errors
///
/// [`MpcError::MemoryExceeded`] if some machine's key share overflows the
/// budget.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::{mpc_aggregate_by_key, Cluster, MpcConfig};
/// let mut cluster = Cluster::new(MpcConfig::new(4, 1024)?);
/// let agg = mpc_aggregate_by_key(&mut cluster, &[(7, 1), (3, 5), (7, 2)])?;
/// assert_eq!(agg, vec![(3, 5), (7, 3)]);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
pub fn mpc_aggregate_by_key(
    cluster: &mut Cluster,
    pairs: &[(u64, u64)],
) -> Result<Vec<(u64, u64)>, MpcError> {
    let m = cluster.config().num_machines();
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    // Shuffle: key k goes to machine hash(k) % m; 2 words per pair.
    let mut loads = vec![0usize; m];
    let mut agg: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &(k, v) in pairs {
        let machine = (mmvc_graph::rng::hash2(0x5EED, k) % m as u64) as usize;
        loads[machine] += 2;
        *agg.entry(k).or_insert(0) += v;
    }
    cluster.round(|r| {
        for (machine, &load) in loads.iter().enumerate() {
            r.receive(machine, load)?;
        }
        Ok(())
    })?;
    Ok(agg.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use mmvc_substrate::Substrate;

    fn cluster(machines: usize, words: usize) -> Cluster {
        Cluster::new(MpcConfig::new(machines, words).unwrap())
    }

    #[test]
    fn sort_matches_std_sort() {
        let mut c = cluster(8, 10_000);
        let items: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 10007).collect();
        let got = mpc_sort(&mut c, &items).unwrap();
        let mut want = items.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    fn sort_empty_and_singleton() {
        let mut c = cluster(4, 100);
        assert!(mpc_sort::<u64>(&mut c, &[]).unwrap().is_empty());
        assert_eq!(c.rounds(), 0);
        assert_eq!(mpc_sort(&mut c, &[9u64]).unwrap(), vec![9]);
    }

    #[test]
    fn sort_with_heavy_duplicates() {
        // All-equal keys land in one bucket: the skew stress case.
        let mut c = cluster(4, 10_000);
        let items = vec![5u64; 3000];
        let got = mpc_sort(&mut c, &items).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn sort_budget_violation() {
        // 4 machines × 100 words cannot hold 10_000 items.
        let mut c = cluster(4, 100);
        let items: Vec<u64> = (0..10_000).collect();
        assert!(matches!(
            mpc_sort(&mut c, &items),
            Err(MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn sort_strings() {
        let mut c = cluster(3, 1000);
        let items: Vec<String> = ["pear", "apple", "fig", "date"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let got = mpc_sort(&mut c, &items).unwrap();
        assert_eq!(got, vec!["apple", "date", "fig", "pear"]);
    }

    #[test]
    fn prefix_sum_correct() {
        let mut c = cluster(4, 1000);
        let values: Vec<u64> = (1..=100).collect();
        let sums = mpc_prefix_sum(&mut c, &values).unwrap();
        assert_eq!(sums[0], 1);
        assert_eq!(sums[99], 5050);
        assert_eq!(c.rounds(), 2);
        assert!(mpc_prefix_sum(&mut c, &[]).unwrap().is_empty());
    }

    #[test]
    fn prefix_sum_budget_violation() {
        let mut c = cluster(2, 10);
        let values = vec![1u64; 1000];
        assert!(matches!(
            mpc_prefix_sum(&mut c, &values),
            Err(MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn aggregate_sums_per_key_sorted() {
        let mut c = cluster(4, 1000);
        let pairs = vec![(9, 1), (2, 10), (9, 4), (2, 1), (5, 7)];
        let agg = mpc_aggregate_by_key(&mut c, &pairs).unwrap();
        assert_eq!(agg, vec![(2, 11), (5, 7), (9, 5)]);
        assert_eq!(c.rounds(), 1);
        assert!(mpc_aggregate_by_key(&mut c, &[]).unwrap().is_empty());
    }

    #[test]
    fn aggregate_skewed_key_violation() {
        // Every pair shares one key -> one machine takes the whole load.
        let mut c = cluster(4, 100);
        let pairs: Vec<(u64, u64)> = (0..200).map(|_| (1u64, 1u64)).collect();
        assert!(matches!(
            mpc_aggregate_by_key(&mut c, &pairs),
            Err(MpcError::MemoryExceeded { .. })
        ));
    }
}
