//! The simulated MPC cluster: synchronous rounds with per-machine memory
//! metering.
//!
//! The simulator does not execute machines on separate hosts — the
//! algorithms run locally — but it *meters* the model quantities exactly:
//! every word a machine receives or holds in a round is charged against its
//! budget, and the trace records rounds, loads, and total communication.
//! Exceeding a budget is a hard [`MpcError::MemoryExceeded`] error, so the
//! paper's "O(n) memory per machine" claims are *checked*, not assumed.

use crate::config::MpcConfig;
use crate::error::MpcError;
use mmvc_substrate::{ExecutionTrace, RoundSummary, Substrate};

/// A simulated MPC cluster (paper, Section 1.1.1).
///
/// Usage follows the model's structure: open a round, charge the words each
/// machine receives/holds, close the round. The convenience wrapper
/// [`Cluster::round`] scopes this with a closure.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::{Cluster, MpcConfig};
///
/// let mut cluster = Cluster::new(MpcConfig::new(4, 1000)?);
/// cluster.round(|r| {
///     r.receive(0, 800)?; // machine 0 receives 800 words
///     r.broadcast(10)?;   // every machine receives 10 words
///     Ok(())
/// })?;
/// assert_eq!(cluster.trace().rounds(), 1);
/// assert_eq!(cluster.trace().max_load_words(), 810);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    config: MpcConfig,
    trace: ExecutionTrace,
    open: Option<Vec<usize>>,
}

/// Handle for charging memory within one open round; created by
/// [`Cluster::round`].
#[derive(Debug)]
pub struct RoundCtx<'a> {
    cluster: &'a mut Cluster,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    pub fn new(config: MpcConfig) -> Self {
        Cluster {
            config,
            trace: ExecutionTrace::new(),
            open: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.trace.rounds()
    }

    /// Opens a new round.
    ///
    /// # Errors
    ///
    /// [`MpcError::RoundProtocol`] if a round is already open.
    pub fn begin_round(&mut self) -> Result<(), MpcError> {
        if self.open.is_some() {
            return Err(MpcError::RoundProtocol {
                message: "round already open",
            });
        }
        self.open = Some(vec![0; self.config.num_machines()]);
        Ok(())
    }

    /// Charges `words` received/held by `machine` in the open round.
    ///
    /// # Errors
    ///
    /// * [`MpcError::RoundProtocol`] if no round is open.
    /// * [`MpcError::NoSuchMachine`] for an invalid machine id.
    /// * [`MpcError::MemoryExceeded`] if the charge would exceed the
    ///   machine's budget.
    pub fn receive(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        let round = self.trace.rounds() + 1;
        let budget = self.config.words_per_machine();
        let num_machines = self.config.num_machines();
        let Some(loads) = self.open.as_mut() else {
            return Err(MpcError::RoundProtocol {
                message: "receive outside a round",
            });
        };
        if machine >= num_machines {
            return Err(MpcError::NoSuchMachine {
                machine,
                num_machines,
            });
        }
        let attempted = loads[machine] + words;
        if attempted > budget {
            return Err(MpcError::MemoryExceeded {
                machine,
                round,
                attempted_words: attempted,
                budget_words: budget,
            });
        }
        loads[machine] = attempted;
        Ok(())
    }

    /// Charges `words` received by *every* machine (a broadcast).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::receive`].
    pub fn broadcast(&mut self, words: usize) -> Result<(), MpcError> {
        for machine in 0..self.config.num_machines() {
            self.receive(machine, words)?;
        }
        Ok(())
    }

    /// Closes the open round and records its summary.
    ///
    /// # Errors
    ///
    /// [`MpcError::RoundProtocol`] if no round is open.
    pub fn end_round(&mut self) -> Result<RoundSummary, MpcError> {
        let Some(loads) = self.open.take() else {
            return Err(MpcError::RoundProtocol {
                message: "end_round without begin_round",
            });
        };
        let summary = RoundSummary {
            round: self.trace.rounds() + 1,
            max_load_words: loads.iter().copied().max().unwrap_or(0),
            total_words: loads.iter().sum(),
        };
        self.trace.record(summary);
        Ok(summary)
    }

    /// Runs `f` inside a fresh round, closing it afterwards.
    ///
    /// If `f` fails, the round is abandoned (not recorded) and the error is
    /// propagated.
    ///
    /// # Errors
    ///
    /// Propagates protocol and budget errors from `f` or round management.
    pub fn round<T>(
        &mut self,
        f: impl FnOnce(&mut RoundCtx<'_>) -> Result<T, MpcError>,
    ) -> Result<T, MpcError> {
        self.begin_round()?;
        let mut ctx = RoundCtx { cluster: self };
        match f(&mut ctx) {
            Ok(value) => {
                self.end_round()?;
                Ok(value)
            }
            Err(e) => {
                self.open = None;
                Err(e)
            }
        }
    }

    /// Records `k` rounds of an abstracted constant-round primitive (e.g.
    /// the "standard techniques" of \[GSZ11\] the paper invokes for sorting /
    /// aggregation), charging `load_words` to every machine per round.
    ///
    /// # Errors
    ///
    /// [`MpcError::MemoryExceeded`] if `load_words` exceeds the budget;
    /// [`MpcError::RoundProtocol`] if a round is already open.
    pub fn charge_rounds(&mut self, k: usize, load_words: usize) -> Result<(), MpcError> {
        for _ in 0..k {
            self.begin_round()?;
            self.broadcast(load_words)?;
            self.end_round()?;
        }
        Ok(())
    }

    /// Merges the trace of a nested computation (e.g. a subroutine run on
    /// its own cluster handle) into this cluster's trace.
    pub fn absorb_trace(&mut self, other: &ExecutionTrace) {
        self.trace.absorb(other);
    }

    /// Executes one round in which every machine `0..k` runs `work`
    /// concurrently on OS threads, then charges each machine the words its
    /// closure reports.
    ///
    /// `work(machine)` returns `(output, words_received)`. This is the
    /// "local computation" step of the MPC model executed with real
    /// parallelism (`std::thread::scope`); metering semantics are
    /// identical to calling [`Cluster::receive`] per machine inside a
    /// [`Cluster::round`].
    ///
    /// # Errors
    ///
    /// * [`MpcError::NoSuchMachine`] if `k` exceeds the cluster size.
    /// * [`MpcError::MemoryExceeded`] if any reported load overflows its
    ///   machine's budget — the round is then abandoned (not recorded).
    /// * [`MpcError::RoundProtocol`] if a round is already open.
    ///
    /// # Examples
    ///
    /// ```
    /// use mmvc_mpc::{Cluster, MpcConfig};
    /// let mut cluster = Cluster::new(MpcConfig::new(4, 1000)?);
    /// let sums = cluster.parallel_round(4, |m| {
    ///     let local_sum: usize = (0..100).map(|i| i * (m + 1)).sum();
    ///     (local_sum, 100) // each machine received 100 words
    /// })?;
    /// assert_eq!(sums.len(), 4);
    /// assert_eq!(cluster.trace().max_load_words(), 100);
    /// # Ok::<(), mmvc_mpc::MpcError>(())
    /// ```
    pub fn parallel_round<T, F>(&mut self, k: usize, work: F) -> Result<Vec<T>, MpcError>
    where
        T: Send,
        F: Fn(usize) -> (T, usize) + Sync,
    {
        if k > self.config.num_machines() {
            return Err(MpcError::NoSuchMachine {
                machine: k.saturating_sub(1),
                num_machines: self.config.num_machines(),
            });
        }
        if self.open.is_some() {
            return Err(MpcError::RoundProtocol {
                message: "round already open",
            });
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let chunk = k.div_ceil(threads.max(1)).max(1);
        let mut results: Vec<Option<(T, usize)>> = (0..k).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot_chunk, base) in results.chunks_mut(chunk).zip((0..k).step_by(chunk)) {
                let work = &work;
                scope.spawn(move || {
                    for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(work(base + offset));
                    }
                });
            }
        });
        self.begin_round()?;
        let mut outputs = Vec::with_capacity(k);
        for (machine, slot) in results.into_iter().enumerate() {
            let (out, words) = slot.expect("every machine slot filled");
            if let Err(e) = self.receive(machine, words) {
                self.open = None; // abandon the partially charged round
                return Err(e);
            }
            outputs.push(out);
        }
        self.end_round()?;
        Ok(outputs)
    }
}

impl Substrate for Cluster {
    fn substrate_name(&self) -> &'static str {
        "mpc"
    }

    fn execution_trace(&self) -> &ExecutionTrace {
        &self.trace
    }
}

impl RoundCtx<'_> {
    /// Charges `words` to `machine`; see [`Cluster::receive`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::receive`].
    pub fn receive(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.cluster.receive(machine, words)
    }

    /// Charges a broadcast; see [`Cluster::broadcast`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::broadcast`].
    pub fn broadcast(&mut self, words: usize) -> Result<(), MpcError> {
        self.cluster.broadcast(words)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        self.cluster.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(MpcConfig::new(3, 100).unwrap())
    }

    #[test]
    fn basic_round_lifecycle() {
        let mut c = small();
        c.begin_round().unwrap();
        c.receive(0, 40).unwrap();
        c.receive(0, 40).unwrap();
        c.receive(2, 10).unwrap();
        let s = c.end_round().unwrap();
        assert_eq!(s.round, 1);
        assert_eq!(s.max_load_words, 80);
        assert_eq!(s.total_words, 90);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn memory_budget_enforced() {
        let mut c = small();
        c.begin_round().unwrap();
        c.receive(1, 99).unwrap();
        let err = c.receive(1, 2).unwrap_err();
        assert_eq!(
            err,
            MpcError::MemoryExceeded {
                machine: 1,
                round: 1,
                attempted_words: 101,
                budget_words: 100
            }
        );
    }

    #[test]
    fn protocol_violations() {
        let mut c = small();
        assert!(matches!(
            c.receive(0, 1),
            Err(MpcError::RoundProtocol { .. })
        ));
        assert!(matches!(c.end_round(), Err(MpcError::RoundProtocol { .. })));
        c.begin_round().unwrap();
        assert!(matches!(
            c.begin_round(),
            Err(MpcError::RoundProtocol { .. })
        ));
    }

    #[test]
    fn no_such_machine() {
        let mut c = small();
        c.begin_round().unwrap();
        assert_eq!(
            c.receive(3, 1).unwrap_err(),
            MpcError::NoSuchMachine {
                machine: 3,
                num_machines: 3
            }
        );
    }

    #[test]
    fn round_closure_records_on_success() {
        let mut c = small();
        let out = c.round(|r| {
            r.receive(0, 5)?;
            Ok(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn round_closure_abandons_on_failure() {
        let mut c = small();
        let out: Result<(), _> = c.round(|r| r.receive(0, 1000));
        assert!(matches!(out, Err(MpcError::MemoryExceeded { .. })));
        assert_eq!(c.rounds(), 0, "failed round not recorded");
        // The cluster is reusable afterwards.
        c.round(|r| r.receive(0, 1)).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn broadcast_charges_everyone() {
        let mut c = small();
        c.round(|r| r.broadcast(30)).unwrap();
        let s = c.trace().per_round()[0];
        assert_eq!(s.max_load_words, 30);
        assert_eq!(s.total_words, 90);
    }

    #[test]
    fn charge_rounds_counts() {
        let mut c = small();
        c.charge_rounds(4, 10).unwrap();
        assert_eq!(c.rounds(), 4);
        assert_eq!(c.trace().total_words(), 4 * 3 * 10);
    }

    #[test]
    fn charge_rounds_budget_enforced() {
        let mut c = small();
        assert!(matches!(
            c.charge_rounds(1, 101),
            Err(MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn parallel_round_outputs_in_machine_order() {
        let mut c = Cluster::new(MpcConfig::new(8, 100).unwrap());
        let out = c.parallel_round(8, |m| (m * 10, m)).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        let s = c.trace().per_round()[0];
        assert_eq!(s.max_load_words, 7);
        assert_eq!(s.total_words, 28);
    }

    #[test]
    fn parallel_round_budget_enforced_and_abandoned() {
        let mut c = small();
        let r = c.parallel_round(3, |m| ((), if m == 2 { 1000 } else { 1 }));
        assert!(matches!(
            r,
            Err(MpcError::MemoryExceeded { machine: 2, .. })
        ));
        assert_eq!(c.rounds(), 0, "failed round not recorded");
        // Cluster usable afterwards.
        c.parallel_round(3, |_| ((), 1)).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn parallel_round_rejects_too_many_machines() {
        let mut c = small();
        assert!(matches!(
            c.parallel_round(4, |_| ((), 0)),
            Err(MpcError::NoSuchMachine { .. })
        ));
    }

    #[test]
    fn parallel_round_zero_machines() {
        let mut c = small();
        let out: Vec<()> = c.parallel_round(0, |_| ((), 0)).unwrap();
        assert!(out.is_empty());
        assert_eq!(c.rounds(), 1, "an empty round still advances the clock");
    }

    #[test]
    fn cluster_is_a_substrate() {
        let mut c = small();
        c.round(|r| {
            r.receive(0, 40)?;
            r.receive(1, 10)
        })
        .unwrap();
        c.round(|r| r.receive(2, 25)).unwrap();
        let s: &dyn Substrate = &c;
        assert_eq!(s.substrate_name(), "mpc");
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.max_load_words(), 40);
        assert_eq!(s.total_words(), 75);
    }

    #[test]
    fn parallel_round_actually_runs_concurrently_safe() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut c = Cluster::new(MpcConfig::new(16, 10).unwrap());
        c.parallel_round(16, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            ((), 1)
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
