//! The simulated MPC cluster: synchronous rounds with per-machine memory
//! metering.
//!
//! The simulator does not execute machines on separate hosts — the
//! algorithms run locally — but it *meters* the model quantities exactly:
//! every word a machine receives or holds in a round is charged against its
//! budget, and the trace records rounds, loads, and total communication.
//! Exceeding a budget is a hard [`MpcError::MemoryExceeded`] error, so the
//! paper's "O(n) memory per machine" claims are *checked*, not assumed.
//!
//! The round lifecycle itself (open/charge/close, protocol guards) is the
//! shared [`RoundLedger`] of `mmvc-substrate`; this type adds the MPC
//! *policy* — a slot is a machine, and every charge is checked against the
//! per-machine memory budget. Per-machine local computation runs through
//! the deterministic [`ExecutorConfig`] (see
//! [`Cluster::parallel_round`]).

use crate::config::MpcConfig;
use crate::error::MpcError;
use mmvc_substrate::{ExecutionTrace, ExecutorConfig, RoundLedger, RoundSummary, Substrate};

/// A simulated MPC cluster (paper, Section 1.1.1).
///
/// Usage follows the model's structure: open a round, charge the words each
/// machine receives/holds, close the round. The convenience wrapper
/// [`Cluster::round`] scopes this with a closure.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::{Cluster, MpcConfig, Substrate};
///
/// let mut cluster = Cluster::new(MpcConfig::new(4, 1000)?);
/// cluster.round(|r| {
///     r.receive(0, 800)?; // machine 0 receives 800 words
///     r.broadcast(10)?;   // every machine receives 10 words
///     Ok(())
/// })?;
/// assert_eq!(cluster.rounds(), 1);
/// assert_eq!(cluster.max_load_words(), 810);
/// # Ok::<(), mmvc_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    config: MpcConfig,
    ledger: RoundLedger,
    executor: ExecutorConfig,
}

/// Handle for charging memory within one open round; created by
/// [`Cluster::round`].
#[derive(Debug)]
pub struct RoundCtx<'a> {
    cluster: &'a mut Cluster,
}

impl Cluster {
    /// Creates a cluster with the given configuration and the default
    /// (threaded, auto-sized) executor.
    pub fn new(config: MpcConfig) -> Self {
        Cluster {
            ledger: RoundLedger::new("mpc", config.num_machines()),
            config,
            executor: ExecutorConfig::default(),
        }
    }

    /// Replaces the executor used by [`Cluster::parallel_round`].
    ///
    /// The thread count is resolved when the [`ExecutorConfig`] is built,
    /// never per round, and results are identical for any executor.
    #[must_use]
    pub fn with_executor(mut self, executor: ExecutorConfig) -> Self {
        // The executor carries the run's telemetry sink; rounds metered
        // by this cluster report their spans into the same sink. Same
        // for the optional charge log: every completed round's per-slot
        // loads are recorded for the transport layer to replay.
        self.ledger.set_telemetry(executor.telemetry());
        if let Some(log) = executor.charge_log() {
            self.ledger.set_recorder(log);
        }
        self.executor = executor;
        self
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The executor running per-machine closures.
    pub fn executor(&self) -> &ExecutorConfig {
        &self.executor
    }

    /// Opens a new round.
    ///
    /// # Errors
    ///
    /// [`MpcError::Substrate`] (round protocol) if a round is already
    /// open.
    pub fn begin_round(&mut self) -> Result<(), MpcError> {
        self.ledger.begin_round()?;
        Ok(())
    }

    /// Charges `words` received/held by `machine` in the open round.
    ///
    /// # Errors
    ///
    /// * [`MpcError::Substrate`] (round protocol) if no round is open.
    /// * [`MpcError::NoSuchMachine`] for an invalid machine id.
    /// * [`MpcError::MemoryExceeded`] if the charge would exceed the
    ///   machine's budget.
    pub fn receive(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        let budget = self.config.words_per_machine();
        let attempted = self.ledger.load(machine)? + words;
        if attempted > budget {
            return Err(MpcError::MemoryExceeded {
                machine,
                round: self.ledger.current_round(),
                attempted_words: attempted,
                budget_words: budget,
            });
        }
        self.ledger.charge(machine, words)?;
        Ok(())
    }

    /// Charges `words` received by *every* machine (a broadcast).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::receive`].
    pub fn broadcast(&mut self, words: usize) -> Result<(), MpcError> {
        for machine in 0..self.config.num_machines() {
            self.receive(machine, words)?;
        }
        Ok(())
    }

    /// Closes the open round and records its summary.
    ///
    /// # Errors
    ///
    /// [`MpcError::Substrate`] (round protocol) if no round is open.
    pub fn end_round(&mut self) -> Result<RoundSummary, MpcError> {
        Ok(self.ledger.end_round()?)
    }

    /// Runs `f` inside a fresh round, closing it afterwards.
    ///
    /// If `f` fails, the round is abandoned (not recorded) and the error is
    /// propagated.
    ///
    /// # Errors
    ///
    /// Propagates protocol and budget errors from `f` or round management.
    pub fn round<T>(
        &mut self,
        f: impl FnOnce(&mut RoundCtx<'_>) -> Result<T, MpcError>,
    ) -> Result<T, MpcError> {
        self.begin_round()?;
        let mut ctx = RoundCtx { cluster: self };
        match f(&mut ctx) {
            Ok(value) => {
                self.end_round()?;
                Ok(value)
            }
            Err(e) => {
                self.ledger.abandon_round();
                Err(e)
            }
        }
    }

    /// Records `k` rounds of an abstracted constant-round primitive (e.g.
    /// the "standard techniques" of \[GSZ11\] the paper invokes for sorting /
    /// aggregation), charging `load_words` to every machine per round.
    ///
    /// # Errors
    ///
    /// [`MpcError::MemoryExceeded`] if `load_words` exceeds the budget;
    /// [`MpcError::Substrate`] (round protocol) if a round is already
    /// open.
    pub fn charge_rounds(&mut self, k: usize, load_words: usize) -> Result<(), MpcError> {
        for _ in 0..k {
            self.begin_round()?;
            self.broadcast(load_words)?;
            self.end_round()?;
        }
        Ok(())
    }

    /// Merges the trace of a nested computation (e.g. a subroutine run on
    /// its own cluster handle) into this cluster's trace.
    pub fn absorb_trace(&mut self, other: &ExecutionTrace) {
        self.ledger.absorb(other);
    }

    /// Executes one round in which every machine `0..k` runs `work`
    /// through the cluster's [`ExecutorConfig`], then charges each machine
    /// the words its closure reports.
    ///
    /// `work(machine)` returns `(output, words_received)`. This is the
    /// "local computation" step of the MPC model executed with real
    /// parallelism; metering semantics are identical to calling
    /// [`Cluster::receive`] per machine inside a [`Cluster::round`], and
    /// the outputs are identical for any executor (results land in
    /// machine-indexed slots; tiny rounds degrade to the sequential path).
    ///
    /// # Errors
    ///
    /// * [`MpcError::NoSuchMachine`] if `k` exceeds the cluster size.
    /// * [`MpcError::MemoryExceeded`] if any reported load overflows its
    ///   machine's budget — the round is then abandoned (not recorded).
    /// * [`MpcError::Substrate`] (round protocol) if a round is already
    ///   open.
    ///
    /// # Examples
    ///
    /// ```
    /// use mmvc_mpc::{Cluster, MpcConfig, Substrate};
    /// let mut cluster = Cluster::new(MpcConfig::new(4, 1000)?);
    /// let sums = cluster.parallel_round(4, |m| {
    ///     let local_sum: usize = (0..100).map(|i| i * (m + 1)).sum();
    ///     (local_sum, 100) // each machine received 100 words
    /// })?;
    /// assert_eq!(sums.len(), 4);
    /// assert_eq!(cluster.max_load_words(), 100);
    /// # Ok::<(), mmvc_mpc::MpcError>(())
    /// ```
    pub fn parallel_round<T, F>(&mut self, k: usize, work: F) -> Result<Vec<T>, MpcError>
    where
        T: Send,
        F: Fn(usize) -> (T, usize) + Sync,
    {
        if k > self.config.num_machines() {
            return Err(MpcError::NoSuchMachine {
                machine: k.saturating_sub(1),
                num_machines: self.config.num_machines(),
            });
        }
        self.ledger.ensure_no_open_round()?;
        let results = self.executor.run(k, &work);
        self.begin_round()?;
        let mut outputs = Vec::with_capacity(k);
        for (machine, (out, words)) in results.into_iter().enumerate() {
            if let Err(e) = self.receive(machine, words) {
                self.ledger.abandon_round(); // abandon the partially charged round
                return Err(e);
            }
            outputs.push(out);
        }
        self.end_round()?;
        Ok(outputs)
    }
}

impl Substrate for Cluster {
    fn substrate_name(&self) -> &'static str {
        "mpc"
    }

    fn execution_trace(&self) -> &ExecutionTrace {
        self.ledger.trace()
    }
}

impl RoundCtx<'_> {
    /// Charges `words` to `machine`; see [`Cluster::receive`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::receive`].
    pub fn receive(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.cluster.receive(machine, words)
    }

    /// Charges a broadcast; see [`Cluster::broadcast`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::broadcast`].
    pub fn broadcast(&mut self, words: usize) -> Result<(), MpcError> {
        self.cluster.broadcast(words)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        self.cluster.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_substrate::SubstrateError;

    fn small() -> Cluster {
        Cluster::new(MpcConfig::new(3, 100).unwrap())
    }

    fn is_round_protocol(e: &MpcError) -> bool {
        matches!(e, MpcError::Substrate(SubstrateError::RoundProtocol { .. }))
    }

    #[test]
    fn basic_round_lifecycle() {
        let mut c = small();
        c.begin_round().unwrap();
        c.receive(0, 40).unwrap();
        c.receive(0, 40).unwrap();
        c.receive(2, 10).unwrap();
        let s = c.end_round().unwrap();
        assert_eq!(s.round, 1);
        assert_eq!(s.max_load_words, 80);
        assert_eq!(s.total_words, 90);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn memory_budget_enforced() {
        let mut c = small();
        c.begin_round().unwrap();
        c.receive(1, 99).unwrap();
        let err = c.receive(1, 2).unwrap_err();
        assert_eq!(
            err,
            MpcError::MemoryExceeded {
                machine: 1,
                round: 1,
                attempted_words: 101,
                budget_words: 100
            }
        );
    }

    #[test]
    fn protocol_violations() {
        let mut c = small();
        assert!(is_round_protocol(&c.receive(0, 1).unwrap_err()));
        assert!(is_round_protocol(&c.end_round().unwrap_err()));
        c.begin_round().unwrap();
        assert!(is_round_protocol(&c.begin_round().unwrap_err()));
    }

    #[test]
    fn no_such_machine() {
        let mut c = small();
        c.begin_round().unwrap();
        assert_eq!(
            c.receive(3, 1).unwrap_err(),
            MpcError::NoSuchMachine {
                machine: 3,
                num_machines: 3
            }
        );
    }

    #[test]
    fn round_closure_records_on_success() {
        let mut c = small();
        let out = c.round(|r| {
            r.receive(0, 5)?;
            Ok(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn round_closure_abandons_on_failure() {
        let mut c = small();
        let out: Result<(), _> = c.round(|r| r.receive(0, 1000));
        assert!(matches!(out, Err(MpcError::MemoryExceeded { .. })));
        assert_eq!(c.rounds(), 0, "failed round not recorded");
        // The cluster is reusable afterwards.
        c.round(|r| r.receive(0, 1)).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn broadcast_charges_everyone() {
        let mut c = small();
        c.round(|r| r.broadcast(30)).unwrap();
        let s = c.execution_trace().per_round()[0];
        assert_eq!(s.max_load_words, 30);
        assert_eq!(s.total_words, 90);
    }

    #[test]
    fn charge_rounds_counts() {
        let mut c = small();
        c.charge_rounds(4, 10).unwrap();
        assert_eq!(c.rounds(), 4);
        assert_eq!(c.total_words(), 4 * 3 * 10);
    }

    #[test]
    fn charge_rounds_budget_enforced() {
        let mut c = small();
        assert!(matches!(
            c.charge_rounds(1, 101),
            Err(MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn parallel_round_outputs_in_machine_order() {
        let mut c = Cluster::new(MpcConfig::new(8, 100).unwrap());
        let out = c.parallel_round(8, |m| (m * 10, m)).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        let s = c.execution_trace().per_round()[0];
        assert_eq!(s.max_load_words, 7);
        assert_eq!(s.total_words, 28);
    }

    #[test]
    fn parallel_round_identical_for_any_executor() {
        let work = |m: usize| (m.wrapping_mul(0x9E37_79B9), m % 5);
        let mut expect: Option<(Vec<usize>, ExecutionTrace)> = None;
        for exec in [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(8),
        ] {
            let mut c = Cluster::new(MpcConfig::new(16, 100).unwrap()).with_executor(exec);
            let out = c.parallel_round(16, work).unwrap();
            let trace = c.execution_trace().clone();
            match &expect {
                None => expect = Some((out, trace)),
                Some((o, t)) => {
                    assert_eq!(&out, o);
                    assert_eq!(&trace, t);
                }
            }
        }
    }

    #[test]
    fn parallel_round_budget_enforced_and_abandoned() {
        let mut c = small();
        let r = c.parallel_round(3, |m| ((), if m == 2 { 1000 } else { 1 }));
        assert!(matches!(
            r,
            Err(MpcError::MemoryExceeded { machine: 2, .. })
        ));
        assert_eq!(c.rounds(), 0, "failed round not recorded");
        // Cluster usable afterwards.
        c.parallel_round(3, |_| ((), 1)).unwrap();
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn parallel_round_rejects_too_many_machines() {
        let mut c = small();
        assert!(matches!(
            c.parallel_round(4, |_| ((), 0)),
            Err(MpcError::NoSuchMachine { .. })
        ));
    }

    #[test]
    fn parallel_round_zero_machines() {
        let mut c = small();
        let out: Vec<()> = c.parallel_round(0, |_| ((), 0)).unwrap();
        assert!(out.is_empty());
        assert_eq!(c.rounds(), 1, "an empty round still advances the clock");
    }

    #[test]
    fn cluster_is_a_substrate() {
        let mut c = small();
        c.round(|r| {
            r.receive(0, 40)?;
            r.receive(1, 10)
        })
        .unwrap();
        c.round(|r| r.receive(2, 25)).unwrap();
        let s: &dyn Substrate = &c;
        assert_eq!(s.substrate_name(), "mpc");
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.max_load_words(), 40);
        assert_eq!(s.total_words(), 75);
    }

    #[test]
    fn parallel_round_actually_runs_concurrently_safe() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut c = Cluster::new(MpcConfig::new(16, 10).unwrap());
        c.parallel_round(16, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            ((), 1)
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
