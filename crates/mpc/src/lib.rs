//! # mmvc-mpc
//!
//! A local simulator of the **Massively Parallel Computation (MPC)** model
//! (Karloff–Suri–Vassilvitskii), the substrate assumed by the PODC'18 paper
//! this workspace reproduces.
//!
//! The MPC model (paper, Section 1.1.1): `m` machines with `S` words of
//! memory each proceed in synchronous rounds; per round, each machine
//! receives and sends messages that must fit in its memory. The complexity
//! measure is the number of rounds.
//!
//! No public Rust crate implements this model, so this crate provides it:
//! a [`Cluster`] meters rounds and per-machine memory (and *fails* on
//! budget violations — the paper's `O(n)`-memory claims are verified, not
//! assumed), [`MpcConfig`] captures the `S ∈ Θ(n)`, `S·m = Θ(N)` regime,
//! and [`random_vertex_partition`] implements the vertex-based random
//! partitioning both of the paper's algorithms rely on.
//!
//! ```
//! use mmvc_mpc::{Cluster, MpcConfig, Substrate, random_vertex_partition};
//!
//! // 16 machines, 10_000 words each.
//! let mut cluster = Cluster::new(MpcConfig::new(16, 10_000)?);
//! let vertices: Vec<u32> = (0..1000).collect();
//! let parts = random_vertex_partition(&vertices, 16, 42);
//!
//! // One round: every machine receives its share of vertices.
//! cluster.round(|r| {
//!     for (machine, part) in parts.iter().enumerate() {
//!         r.receive(machine, part.len())?;
//!     }
//!     Ok(())
//! })?;
//! assert_eq!(cluster.rounds(), 1);
//! # Ok::<(), mmvc_mpc::MpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod error;
mod partition;
mod primitives;

pub use cluster::{Cluster, RoundCtx};
pub use config::MpcConfig;
pub use error::MpcError;
pub use partition::{machine_of_vertex, random_vertex_partition};
pub use primitives::{mpc_aggregate_by_key, mpc_prefix_sum, mpc_sort};
// The trace types and the round engine are shared with the
// CONGESTED-CLIQUE substrate and live in `mmvc-substrate`; re-exported
// here so `mmvc_mpc::ExecutionTrace` (etc.) keeps working.
pub use mmvc_substrate::{
    ExecutionTrace, ExecutorConfig, RoundLedger, RoundSummary, Substrate, SubstrateError,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn trace_totals_match_per_round(
            charges in proptest::collection::vec((0usize..4, 0usize..50), 0..40)
        ) {
            let mut c = Cluster::new(MpcConfig::new(4, 10_000).unwrap());
            c.begin_round().unwrap();
            let mut expect_total = 0usize;
            for (m, w) in charges {
                c.receive(m, w).unwrap();
                expect_total += w;
            }
            let s = c.end_round().unwrap();
            prop_assert_eq!(s.total_words, expect_total);
            prop_assert!(s.max_load_words <= expect_total);
        }

        #[test]
        fn partition_always_exhaustive(n in 0usize..500, m in 1usize..12, seed: u64) {
            let verts: Vec<u32> = (0..n as u32).collect();
            let parts = random_vertex_partition(&verts, m, seed);
            prop_assert_eq!(parts.len(), m);
            prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), n);
        }

        #[test]
        fn budget_never_silently_exceeded(words in 0usize..300, budget in 1usize..200) {
            let mut c = Cluster::new(MpcConfig::new(1, budget).unwrap());
            c.begin_round().unwrap();
            let r = c.receive(0, words);
            if words <= budget {
                prop_assert!(r.is_ok());
            } else {
                let exceeded = matches!(r, Err(MpcError::MemoryExceeded { .. }));
                prop_assert!(exceeded);
            }
        }
    }
}
