//! Vertex-based random partitioning (paper, Sections 3.2 and 4.3).
//!
//! Both of the paper's MPC algorithms distribute *vertices* (not edges)
//! uniformly at random across machines and have each machine work on the
//! induced subgraph of its share — the technique introduced for matching in
//! [CŁM+18]. This module implements that primitive deterministically from a
//! seed.

use mmvc_graph::rng::hash2;
use mmvc_graph::VertexId;

/// Partitions `vertices` into `m` groups by assigning each vertex to a
/// machine independently and uniformly at random (derived statelessly from
/// `seed`, so any simulated machine can recompute the assignment).
///
/// Returns `parts` with `parts.len() == m`; every input vertex appears in
/// exactly one part.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// use mmvc_mpc::random_vertex_partition;
/// let verts: Vec<u32> = (0..100).collect();
/// let parts = random_vertex_partition(&verts, 4, 7);
/// assert_eq!(parts.len(), 4);
/// assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
/// ```
pub fn random_vertex_partition(vertices: &[VertexId], m: usize, seed: u64) -> Vec<Vec<VertexId>> {
    assert!(m > 0, "cannot partition into zero machines");
    let mut parts: Vec<Vec<VertexId>> = vec![Vec::with_capacity(vertices.len() / m + 1); m];
    for &v in vertices {
        let machine = (hash2(seed, v as u64) % m as u64) as usize;
        parts[machine].push(v);
    }
    parts
}

/// The machine a given vertex is assigned to under
/// [`random_vertex_partition`] with the same `(m, seed)`.
pub fn machine_of_vertex(v: VertexId, m: usize, seed: u64) -> usize {
    assert!(m > 0, "cannot partition into zero machines");
    (hash2(seed, v as u64) % m as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let verts: Vec<u32> = (0..1000).collect();
        let parts = random_vertex_partition(&verts, 7, 3);
        let mut seen = vec![false; 1000];
        for part in &parts {
            for &v in part {
                assert!(!seen[v as usize], "vertex {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consistent_with_machine_of_vertex() {
        let verts: Vec<u32> = (0..200).collect();
        let parts = random_vertex_partition(&verts, 5, 11);
        for (i, part) in parts.iter().enumerate() {
            for &v in part {
                assert_eq!(machine_of_vertex(v, 5, 11), i);
            }
        }
    }

    #[test]
    fn balanced_in_expectation() {
        let verts: Vec<u32> = (0..10_000).collect();
        let m = 10;
        let parts = random_vertex_partition(&verts, m, 99);
        let expected = 10_000 / m;
        for (i, part) in parts.iter().enumerate() {
            let len = part.len();
            assert!(
                (len as f64 - expected as f64).abs() < 0.15 * expected as f64,
                "part {i} has {len}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let verts: Vec<u32> = (0..100).collect();
        assert_eq!(
            random_vertex_partition(&verts, 4, 1),
            random_vertex_partition(&verts, 4, 1)
        );
        assert_ne!(
            random_vertex_partition(&verts, 4, 1),
            random_vertex_partition(&verts, 4, 2)
        );
    }

    #[test]
    fn single_machine_gets_everything() {
        let verts: Vec<u32> = (0..50).collect();
        let parts = random_vertex_partition(&verts, 1, 0);
        assert_eq!(parts[0].len(), 50);
    }

    #[test]
    #[should_panic(expected = "zero machines")]
    fn zero_machines_panics() {
        random_vertex_partition(&[1, 2, 3], 0, 0);
    }

    #[test]
    fn empty_vertex_list() {
        let parts = random_vertex_partition(&[], 3, 0);
        assert!(parts.iter().all(Vec::is_empty));
    }
}
