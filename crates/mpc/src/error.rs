//! Errors reported by the MPC simulator.

use std::error::Error;
use std::fmt;

/// Errors arising while simulating an MPC computation.
///
/// The most important variant is [`MpcError::MemoryExceeded`]: the paper's
/// claims are of the form "this fits in O(n) words per machine", and the
/// simulator *verifies* rather than assumes them — an algorithm that ships
/// too much data to one machine fails loudly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// A machine's per-round memory budget was exceeded.
    MemoryExceeded {
        /// The machine whose budget was violated.
        machine: usize,
        /// The round in which the violation occurred (1-based).
        round: usize,
        /// Words the machine would have had to hold.
        attempted_words: usize,
        /// The configured budget in words.
        budget_words: usize,
    },
    /// An operation referenced a machine id `>= num_machines`.
    NoSuchMachine {
        /// The offending machine id.
        machine: usize,
        /// Number of machines in the cluster.
        num_machines: usize,
    },
    /// An operation requiring an open round was invoked outside one, or a
    /// round was opened twice.
    RoundProtocol {
        /// Description of the misuse.
        message: &'static str,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::MemoryExceeded {
                machine,
                round,
                attempted_words,
                budget_words,
            } => write!(
                f,
                "machine {machine} exceeded its memory budget in round {round}: \
                 {attempted_words} words > budget {budget_words}"
            ),
            MpcError::NoSuchMachine {
                machine,
                num_machines,
            } => {
                write!(
                    f,
                    "machine {machine} does not exist (cluster has {num_machines})"
                )
            }
            MpcError::RoundProtocol { message } => write!(f, "round protocol violation: {message}"),
            MpcError::InvalidConfig { message } => {
                write!(f, "invalid MPC configuration: {message}")
            }
        }
    }
}

impl Error for MpcError {}

impl From<MpcError> for mmvc_substrate::SubstrateError {
    fn from(e: MpcError) -> Self {
        use mmvc_substrate::SubstrateError;
        const SUBSTRATE: &str = "mpc";
        match e {
            MpcError::MemoryExceeded {
                machine,
                round,
                attempted_words,
                budget_words,
            } => SubstrateError::LoadExceeded {
                substrate: SUBSTRATE,
                location: format!("machine {machine}"),
                round: Some(round),
                attempted_words,
                budget_words,
            },
            MpcError::NoSuchMachine {
                machine,
                num_machines,
            } => SubstrateError::InvalidAddress {
                substrate: SUBSTRATE,
                address: machine,
                limit: num_machines,
            },
            MpcError::RoundProtocol { message } => SubstrateError::RoundProtocol {
                substrate: SUBSTRATE,
                message,
            },
            MpcError::InvalidConfig { message } => SubstrateError::InvalidConfig {
                substrate: SUBSTRATE,
                message,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = MpcError::MemoryExceeded {
            machine: 3,
            round: 7,
            attempted_words: 1000,
            budget_words: 100,
        };
        let s = e.to_string();
        assert!(s.contains("machine 3") && s.contains("round 7") && s.contains("1000"));
        assert!(MpcError::NoSuchMachine {
            machine: 9,
            num_machines: 4
        }
        .to_string()
        .contains("machine 9"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(MpcError::RoundProtocol { message: "x" });
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn converts_to_substrate_error() {
        use mmvc_substrate::SubstrateError;
        let e: SubstrateError = MpcError::MemoryExceeded {
            machine: 3,
            round: 7,
            attempted_words: 1000,
            budget_words: 100,
        }
        .into();
        assert_eq!(
            e,
            SubstrateError::LoadExceeded {
                substrate: "mpc",
                location: "machine 3".into(),
                round: Some(7),
                attempted_words: 1000,
                budget_words: 100,
            }
        );
        let e: SubstrateError = MpcError::NoSuchMachine {
            machine: 9,
            num_machines: 4,
        }
        .into();
        assert!(matches!(
            e,
            SubstrateError::InvalidAddress {
                address: 9,
                limit: 4,
                ..
            }
        ));
        let e: SubstrateError = MpcError::RoundProtocol { message: "m" }.into();
        assert!(matches!(e, SubstrateError::RoundProtocol { .. }));
        let e: SubstrateError = MpcError::InvalidConfig {
            message: "c".into(),
        }
        .into();
        assert!(matches!(e, SubstrateError::InvalidConfig { .. }));
    }
}
