//! Errors reported by the MPC simulator.

use mmvc_substrate::SubstrateError;
use std::error::Error;
use std::fmt;

/// Errors arising while simulating an MPC computation.
///
/// The most important variant is [`MpcError::MemoryExceeded`]: the paper's
/// claims are of the form "this fits in O(n) words per machine", and the
/// simulator *verifies* rather than assumes them — an algorithm that ships
/// too much data to one machine fails loudly.
///
/// Failures that are not specific to the MPC model — round-protocol misuse
/// detected by the shared [`mmvc_substrate::RoundLedger`] — surface as
/// [`MpcError::Substrate`], carrying the [`SubstrateError`] unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// A machine's per-round memory budget was exceeded.
    MemoryExceeded {
        /// The machine whose budget was violated.
        machine: usize,
        /// The round in which the violation occurred (1-based).
        round: usize,
        /// Words the machine would have had to hold.
        attempted_words: usize,
        /// The configured budget in words.
        budget_words: usize,
    },
    /// An operation referenced a machine id `>= num_machines`.
    NoSuchMachine {
        /// The offending machine id.
        machine: usize,
        /// Number of machines in the cluster.
        num_machines: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        message: String,
    },
    /// A substrate-level failure shared with every metered model — most
    /// commonly [`SubstrateError::RoundProtocol`] (an operation requiring
    /// an open round was invoked outside one, or a round was opened
    /// twice), reported by the shared round ledger.
    Substrate(SubstrateError),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::MemoryExceeded {
                machine,
                round,
                attempted_words,
                budget_words,
            } => write!(
                f,
                "machine {machine} exceeded its memory budget in round {round}: \
                 {attempted_words} words > budget {budget_words}"
            ),
            MpcError::NoSuchMachine {
                machine,
                num_machines,
            } => {
                write!(
                    f,
                    "machine {machine} does not exist (cluster has {num_machines})"
                )
            }
            MpcError::InvalidConfig { message } => {
                write!(f, "invalid MPC configuration: {message}")
            }
            MpcError::Substrate(e) => write!(f, "{e}"),
        }
    }
}

impl Error for MpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MpcError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpcError> for SubstrateError {
    fn from(e: MpcError) -> Self {
        const SUBSTRATE: &str = "mpc";
        match e {
            MpcError::MemoryExceeded {
                machine,
                round,
                attempted_words,
                budget_words,
            } => SubstrateError::LoadExceeded {
                substrate: SUBSTRATE,
                location: format!("machine {machine}"),
                round: Some(round),
                attempted_words,
                budget_words,
            },
            MpcError::NoSuchMachine {
                machine,
                num_machines,
            } => SubstrateError::InvalidAddress {
                substrate: SUBSTRATE,
                address: machine,
                limit: num_machines,
            },
            MpcError::InvalidConfig { message } => SubstrateError::InvalidConfig {
                substrate: SUBSTRATE,
                message,
            },
            MpcError::Substrate(e) => e,
        }
    }
}

impl From<SubstrateError> for MpcError {
    /// Re-enters the MPC vocabulary where one exists (an invalid address
    /// *is* a missing machine); every other case is carried through as
    /// [`MpcError::Substrate`].
    fn from(e: SubstrateError) -> Self {
        match e {
            SubstrateError::InvalidAddress { address, limit, .. } => MpcError::NoSuchMachine {
                machine: address,
                num_machines: limit,
            },
            other => MpcError::Substrate(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = MpcError::MemoryExceeded {
            machine: 3,
            round: 7,
            attempted_words: 1000,
            budget_words: 100,
        };
        let s = e.to_string();
        assert!(s.contains("machine 3") && s.contains("round 7") && s.contains("1000"));
        assert!(MpcError::NoSuchMachine {
            machine: 9,
            num_machines: 4
        }
        .to_string()
        .contains("machine 9"));
        assert!(MpcError::Substrate(SubstrateError::RoundProtocol {
            substrate: "mpc",
            message: "round already open"
        })
        .to_string()
        .contains("already open"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn Error + Send + Sync> =
            Box::new(MpcError::Substrate(SubstrateError::RoundProtocol {
                substrate: "mpc",
                message: "x",
            }));
        assert!(e.to_string().contains("x"));
        // The wrapped SubstrateError stays reachable through the chain.
        let source = e.source().expect("Substrate variant chains its cause");
        assert!(source.downcast_ref::<SubstrateError>().is_some());
        assert!(MpcError::NoSuchMachine {
            machine: 0,
            num_machines: 1
        }
        .source()
        .is_none());
    }

    #[test]
    fn converts_to_substrate_error() {
        let e: SubstrateError = MpcError::MemoryExceeded {
            machine: 3,
            round: 7,
            attempted_words: 1000,
            budget_words: 100,
        }
        .into();
        assert_eq!(
            e,
            SubstrateError::LoadExceeded {
                substrate: "mpc",
                location: "machine 3".into(),
                round: Some(7),
                attempted_words: 1000,
                budget_words: 100,
            }
        );
        let e: SubstrateError = MpcError::NoSuchMachine {
            machine: 9,
            num_machines: 4,
        }
        .into();
        assert!(matches!(
            e,
            SubstrateError::InvalidAddress {
                address: 9,
                limit: 4,
                ..
            }
        ));
        let e: SubstrateError = MpcError::InvalidConfig {
            message: "c".into(),
        }
        .into();
        assert!(matches!(e, SubstrateError::InvalidConfig { .. }));
    }

    #[test]
    fn round_trips_through_substrate_error() {
        // The shared cases pass through unchanged in both directions…
        let shared = SubstrateError::RoundProtocol {
            substrate: "mpc",
            message: "m",
        };
        let e: MpcError = shared.clone().into();
        assert_eq!(e, MpcError::Substrate(shared.clone()));
        assert_eq!(SubstrateError::from(e), shared);
        // …and an invalid address re-enters the MPC vocabulary.
        let e: MpcError = SubstrateError::InvalidAddress {
            substrate: "mpc",
            address: 3,
            limit: 2,
        }
        .into();
        assert_eq!(
            e,
            MpcError::NoSuchMachine {
                machine: 3,
                num_machines: 2
            }
        );
    }
}
