//! Errors reported by the CONGESTED-CLIQUE simulator.

use mmvc_substrate::SubstrateError;
use std::error::Error;
use std::fmt;

/// Which direction of a routing capacity was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingRole {
    /// The player sent too many words.
    Sender,
    /// The player was addressed by too many words.
    Receiver,
}

impl fmt::Display for RoutingRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingRole::Sender => write!(f, "sender"),
            RoutingRole::Receiver => write!(f, "receiver"),
        }
    }
}

/// Errors arising while simulating a CONGESTED-CLIQUE computation.
///
/// Failures that are not specific to the clique model — round-protocol
/// misuse detected by the shared [`mmvc_substrate::RoundLedger`] — surface
/// as [`CliqueError::Substrate`], carrying the [`SubstrateError`]
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliqueError {
    /// A player tried to push more words over a link than the per-round,
    /// per-pair bandwidth allows.
    BandwidthExceeded {
        /// Sending player.
        from: usize,
        /// Receiving player.
        to: usize,
        /// Round of the violation (1-based).
        round: usize,
        /// Words attempted over this link this round.
        attempted_words: usize,
        /// Per-pair budget in words.
        budget_words: usize,
    },
    /// An operation referenced a player id `>= n`.
    NoSuchPlayer {
        /// The offending player id.
        player: usize,
        /// Number of players.
        n: usize,
    },
    /// Lenzen's routing scheme was invoked with a load exceeding its
    /// precondition (each player sends and receives at most `n` words).
    RoutingOverload {
        /// The overloaded player.
        player: usize,
        /// Whether it was overloaded as sender or receiver.
        role: RoutingRole,
        /// Words attempted.
        attempted_words: usize,
        /// The `n`-word capacity.
        capacity_words: usize,
    },
    /// Invalid configuration.
    InvalidConfig {
        /// Description of the violated constraint.
        message: String,
    },
    /// A substrate-level failure shared with every metered model — most
    /// commonly [`SubstrateError::RoundProtocol`] (a round opened twice,
    /// send outside a round…), reported by the shared round ledger.
    Substrate(SubstrateError),
}

impl fmt::Display for CliqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliqueError::BandwidthExceeded {
                from,
                to,
                round,
                attempted_words,
                budget_words,
            } => {
                write!(
                    f,
                    "link {from}->{to} exceeded bandwidth in round {round}: \
                     {attempted_words} words > budget {budget_words}"
                )
            }
            CliqueError::NoSuchPlayer { player, n } => {
                write!(f, "player {player} does not exist (clique has {n} players)")
            }
            CliqueError::RoutingOverload {
                player,
                role,
                attempted_words,
                capacity_words,
            } => {
                write!(
                    f,
                    "Lenzen routing precondition violated: player {player} as {role} \
                     has {attempted_words} words > capacity {capacity_words}"
                )
            }
            CliqueError::InvalidConfig { message } => {
                write!(f, "invalid clique configuration: {message}")
            }
            CliqueError::Substrate(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CliqueError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliqueError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CliqueError> for SubstrateError {
    fn from(e: CliqueError) -> Self {
        const SUBSTRATE: &str = "congested-clique";
        match e {
            CliqueError::BandwidthExceeded {
                from,
                to,
                round,
                attempted_words,
                budget_words,
            } => SubstrateError::LoadExceeded {
                substrate: SUBSTRATE,
                location: format!("link {from}->{to}"),
                round: Some(round),
                attempted_words,
                budget_words,
            },
            CliqueError::RoutingOverload {
                player,
                role,
                attempted_words,
                capacity_words,
            } => SubstrateError::LoadExceeded {
                substrate: SUBSTRATE,
                location: format!("player {player} as {role}"),
                round: None,
                attempted_words,
                budget_words: capacity_words,
            },
            CliqueError::NoSuchPlayer { player, n } => SubstrateError::InvalidAddress {
                substrate: SUBSTRATE,
                address: player,
                limit: n,
            },
            CliqueError::InvalidConfig { message } => SubstrateError::InvalidConfig {
                substrate: SUBSTRATE,
                message,
            },
            CliqueError::Substrate(e) => e,
        }
    }
}

impl From<SubstrateError> for CliqueError {
    /// Re-enters the clique vocabulary where one exists (an invalid
    /// address *is* a missing player); every other case is carried through
    /// as [`CliqueError::Substrate`].
    fn from(e: SubstrateError) -> Self {
        match e {
            SubstrateError::InvalidAddress { address, limit, .. } => CliqueError::NoSuchPlayer {
                player: address,
                n: limit,
            },
            other => CliqueError::Substrate(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CliqueError::BandwidthExceeded {
            from: 1,
            to: 2,
            round: 3,
            attempted_words: 4,
            budget_words: 1,
        };
        assert!(e.to_string().contains("1->2"));
        let e = CliqueError::RoutingOverload {
            player: 5,
            role: RoutingRole::Receiver,
            attempted_words: 100,
            capacity_words: 10,
        };
        assert!(e.to_string().contains("receiver"));
        assert!(CliqueError::NoSuchPlayer { player: 3, n: 2 }
            .to_string()
            .contains("player 3"));
        assert!(CliqueError::Substrate(SubstrateError::RoundProtocol {
            substrate: "congested-clique",
            message: "round already open"
        })
        .to_string()
        .contains("already open"));
    }

    #[test]
    fn converts_to_substrate_error() {
        let e: SubstrateError = CliqueError::BandwidthExceeded {
            from: 1,
            to: 2,
            round: 3,
            attempted_words: 4,
            budget_words: 1,
        }
        .into();
        assert_eq!(
            e,
            SubstrateError::LoadExceeded {
                substrate: "congested-clique",
                location: "link 1->2".into(),
                round: Some(3),
                attempted_words: 4,
                budget_words: 1,
            }
        );
        let e: SubstrateError = CliqueError::RoutingOverload {
            player: 5,
            role: RoutingRole::Receiver,
            attempted_words: 100,
            capacity_words: 10,
        }
        .into();
        assert!(matches!(
            e,
            SubstrateError::LoadExceeded { round: None, .. }
        ));
        let e: SubstrateError = CliqueError::NoSuchPlayer { player: 3, n: 2 }.into();
        assert!(matches!(
            e,
            SubstrateError::InvalidAddress {
                address: 3,
                limit: 2,
                ..
            }
        ));
        let e: SubstrateError = CliqueError::InvalidConfig {
            message: "c".into(),
        }
        .into();
        assert!(matches!(e, SubstrateError::InvalidConfig { .. }));
    }

    #[test]
    fn substrate_variant_chains_its_cause() {
        let e = CliqueError::Substrate(SubstrateError::RoundProtocol {
            substrate: "congested-clique",
            message: "x",
        });
        let source = Error::source(&e).expect("Substrate variant chains its cause");
        assert!(source.downcast_ref::<SubstrateError>().is_some());
        assert!(Error::source(&CliqueError::NoSuchPlayer { player: 0, n: 1 }).is_none());
    }

    #[test]
    fn round_trips_through_substrate_error() {
        let shared = SubstrateError::RoundProtocol {
            substrate: "congested-clique",
            message: "m",
        };
        let e: CliqueError = shared.clone().into();
        assert_eq!(e, CliqueError::Substrate(shared.clone()));
        assert_eq!(SubstrateError::from(e), shared);
        let e: CliqueError = SubstrateError::InvalidAddress {
            substrate: "congested-clique",
            address: 7,
            limit: 4,
        }
        .into();
        assert_eq!(e, CliqueError::NoSuchPlayer { player: 7, n: 4 });
    }
}
