//! The simulated CONGESTED-CLIQUE network.
//!
//! The round lifecycle (open/charge/close, protocol guards) is the shared
//! [`RoundLedger`] of `mmvc-substrate`; this type adds the clique
//! *policy* — a slot is a player, the charge of a `send` is the words the
//! receiving player takes in, and every link `(from, to)` is additionally
//! checked against the per-round per-pair bandwidth.

use crate::error::{CliqueError, RoutingRole};
use mmvc_substrate::{ExecutionTrace, RoundLedger, Substrate};
use std::collections::HashMap;

/// Number of rounds charged for one invocation of Lenzen's routing scheme.
///
/// Lenzen's deterministic scheme completes any routing instance in which
/// every player sends and receives at most `n` messages in `O(1)` rounds
/// \[Len13\]; the concrete constant in his paper is 16, but since the paper
/// we reproduce only relies on "O(1)" we charge a small representative
/// constant and expose it for the experiments to report.
pub const LENZEN_ROUTING_ROUNDS: usize = 2;

/// A simulated CONGESTED-CLIQUE network (paper, Section 1.1.2).
///
/// `n` players communicate in synchronous rounds; per round, every ordered
/// pair of players may exchange `O(log n)` bits — one *word* by default.
/// The simulator meters per-link bandwidth, counts rounds, and provides the
/// two primitives the paper's algorithms use: [`broadcast`](Self::broadcast)
/// and [`lenzen_route`](Self::lenzen_route).
///
/// # Examples
///
/// ```
/// use mmvc_clique::{CliqueNetwork, Substrate};
///
/// let mut net = CliqueNetwork::new(8)?;
/// net.round(|r| {
///     r.send(0, 1, 1)?; // one word over link 0->1
///     Ok(())
/// })?;
/// assert_eq!(net.rounds(), 1);
/// # Ok::<(), mmvc_clique::CliqueError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CliqueNetwork {
    n: usize,
    words_per_pair: usize,
    ledger: RoundLedger,
    /// Per-link usage of the open round; cleared by `begin_round`, only
    /// meaningful while the ledger has an open round.
    open_links: HashMap<(u32, u32), usize>,
}

/// Handle for sending within one open round; created by
/// [`CliqueNetwork::round`].
#[derive(Debug)]
pub struct CliqueRoundCtx<'a> {
    net: &'a mut CliqueNetwork,
}

impl CliqueNetwork {
    /// Creates a network of `n` players with the standard one-word
    /// (`O(log n)`-bit) per-pair bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::InvalidConfig`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, CliqueError> {
        Self::with_bandwidth(n, 1)
    }

    /// Creates a network with `words_per_pair` words of per-round per-pair
    /// bandwidth (for experimenting with `O(polylog)`-bit variants).
    ///
    /// # Errors
    ///
    /// Returns [`CliqueError::InvalidConfig`] if `n == 0` or
    /// `words_per_pair == 0`.
    pub fn with_bandwidth(n: usize, words_per_pair: usize) -> Result<Self, CliqueError> {
        if n == 0 {
            return Err(CliqueError::InvalidConfig {
                message: "need at least one player".into(),
            });
        }
        if words_per_pair == 0 {
            return Err(CliqueError::InvalidConfig {
                message: "per-pair bandwidth must be positive".into(),
            });
        }
        Ok(CliqueNetwork {
            n,
            words_per_pair,
            ledger: RoundLedger::new("congested-clique", n),
            open_links: HashMap::new(),
        })
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.n
    }

    /// Attaches a telemetry sink: completed rounds emit spans (tagged
    /// `congested-clique`) when it is enabled. The network has no
    /// executor of its own, so callers pass the sink from the run's
    /// `ExecutorConfig` explicitly. Strictly an observer — the metered
    /// trace is identical with or without it.
    pub fn set_telemetry(&mut self, telemetry: &mmvc_substrate::Telemetry) {
        self.ledger.set_telemetry(telemetry);
    }

    /// Per-round, per-ordered-pair bandwidth in words.
    pub fn words_per_pair(&self) -> usize {
        self.words_per_pair
    }

    fn check_player(&self, player: usize) -> Result<(), CliqueError> {
        if player >= self.n {
            Err(CliqueError::NoSuchPlayer { player, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Opens a round.
    ///
    /// # Errors
    ///
    /// [`CliqueError::Substrate`] (round protocol) if a round is already
    /// open.
    pub fn begin_round(&mut self) -> Result<(), CliqueError> {
        self.ledger.begin_round()?;
        self.open_links.clear();
        Ok(())
    }

    /// Sends `words` from player `from` to player `to` in the open round.
    ///
    /// # Errors
    ///
    /// * [`CliqueError::Substrate`] (round protocol) if no round is open.
    /// * [`CliqueError::NoSuchPlayer`] for invalid ids.
    /// * [`CliqueError::BandwidthExceeded`] if the link budget overflows.
    pub fn send(&mut self, from: usize, to: usize, words: usize) -> Result<(), CliqueError> {
        self.check_player(from)?;
        self.check_player(to)?;
        self.ledger.ensure_open()?;
        let used = self.open_links.entry((from as u32, to as u32)).or_insert(0);
        let attempted = *used + words;
        if attempted > self.words_per_pair {
            return Err(CliqueError::BandwidthExceeded {
                from,
                to,
                round: self.ledger.current_round(),
                attempted_words: attempted,
                budget_words: self.words_per_pair,
            });
        }
        *used = attempted;
        self.ledger.charge(to, words)?;
        Ok(())
    }

    /// Closes the open round.
    ///
    /// # Errors
    ///
    /// [`CliqueError::Substrate`] (round protocol) if no round is open.
    pub fn end_round(&mut self) -> Result<(), CliqueError> {
        self.ledger.end_round()?;
        Ok(())
    }

    /// Runs `f` inside a fresh round.
    ///
    /// On failure the round is abandoned and not counted.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f` and round management.
    pub fn round<T>(
        &mut self,
        f: impl FnOnce(&mut CliqueRoundCtx<'_>) -> Result<T, CliqueError>,
    ) -> Result<T, CliqueError> {
        self.begin_round()?;
        let mut ctx = CliqueRoundCtx { net: self };
        match f(&mut ctx) {
            Ok(v) => {
                self.end_round()?;
                Ok(v)
            }
            Err(e) => {
                self.ledger.abandon_round();
                Err(e)
            }
        }
    }

    /// Broadcasts `words` words from `from` to every other player, using as
    /// many rounds as the per-pair bandwidth requires
    /// (`ceil(words / words_per_pair)`).
    ///
    /// Returns the number of rounds consumed. Broadcasting zero words is a
    /// no-op costing zero rounds.
    ///
    /// # Errors
    ///
    /// * [`CliqueError::NoSuchPlayer`] for an invalid id.
    /// * [`CliqueError::Substrate`] (round protocol) if a round is already
    ///   open.
    pub fn broadcast(&mut self, from: usize, words: usize) -> Result<usize, CliqueError> {
        self.check_player(from)?;
        let rounds_needed = words.div_ceil(self.words_per_pair);
        let mut remaining = words;
        for _ in 0..rounds_needed {
            let chunk = remaining.min(self.words_per_pair);
            self.round(|r| {
                for to in 0..r.net.n {
                    if to != from {
                        r.send(from, to, chunk)?;
                    }
                }
                Ok(())
            })?;
            remaining -= chunk;
        }
        Ok(rounds_needed)
    }

    /// Charges a full all-to-all exchange in which every ordered pair
    /// exchanges `words` words, using `ceil(words / words_per_pair)`
    /// rounds. Accounting is `O(1)` (no per-link map entries), making this
    /// suitable for large `n` — e.g. "every vertex broadcasts its rank"
    /// in the paper's CONGESTED-CLIQUE MIS (Section 3.2).
    ///
    /// Returns the number of rounds consumed (0 when `words == 0`).
    ///
    /// # Errors
    ///
    /// [`CliqueError::Substrate`] (round protocol) if a round is already
    /// open.
    pub fn all_to_all(&mut self, words: usize) -> Result<usize, CliqueError> {
        self.ledger.ensure_no_open_round()?;
        let rounds_needed = words.div_ceil(self.words_per_pair);
        let pairs = self.n * self.n.saturating_sub(1);
        let mut remaining = words;
        for _ in 0..rounds_needed {
            let chunk = remaining.min(self.words_per_pair);
            self.ledger
                .record_completed(1, pairs * chunk, self.n.saturating_sub(1) * chunk)?;
            remaining -= chunk;
        }
        Ok(rounds_needed)
    }

    /// Routes an arbitrary multiset of point-to-point messages using
    /// Lenzen's deterministic routing scheme \[Len13\]: if every player sends
    /// at most `n` words and receives at most `n` words, the whole instance
    /// completes in `O(1)` rounds ([`LENZEN_ROUTING_ROUNDS`]).
    ///
    /// `messages` is a list of `(from, to, words)` triples. Returns the
    /// number of rounds consumed.
    ///
    /// # Errors
    ///
    /// * [`CliqueError::NoSuchPlayer`] for invalid ids.
    /// * [`CliqueError::RoutingOverload`] if a player's send or receive
    ///   total exceeds `n` words — the scheme's precondition, which the
    ///   paper's algorithms must (and do) maintain.
    pub fn lenzen_route(
        &mut self,
        messages: &[(usize, usize, usize)],
    ) -> Result<usize, CliqueError> {
        let mut out = vec![0usize; self.n];
        let mut inc = vec![0usize; self.n];
        for &(from, to, words) in messages {
            self.check_player(from)?;
            self.check_player(to)?;
            out[from] += words;
            inc[to] += words;
        }
        let capacity = self.n * self.words_per_pair;
        for p in 0..self.n {
            if out[p] > capacity {
                return Err(CliqueError::RoutingOverload {
                    player: p,
                    role: RoutingRole::Sender,
                    attempted_words: out[p],
                    capacity_words: capacity,
                });
            }
            if inc[p] > capacity {
                return Err(CliqueError::RoutingOverload {
                    player: p,
                    role: RoutingRole::Receiver,
                    attempted_words: inc[p],
                    capacity_words: capacity,
                });
            }
        }
        // The scheme itself is abstracted: charge its constant round cost
        // and account the traffic.
        let total: usize = messages.iter().map(|&(_, _, w)| w).sum();
        let max_in = inc.iter().copied().max().unwrap_or(0);
        self.ledger
            .record_completed(LENZEN_ROUTING_ROUNDS, total, max_in)?;
        Ok(LENZEN_ROUTING_ROUNDS)
    }

    /// Charges `k` rounds of an abstracted constant-round local primitive
    /// (e.g. "every vertex tells its neighbors whether it joined the MIS").
    ///
    /// # Errors
    ///
    /// [`CliqueError::Substrate`] (round protocol) if a round is already
    /// open.
    pub fn charge_rounds(&mut self, k: usize) -> Result<(), CliqueError> {
        for _ in 0..k {
            self.begin_round()?;
            self.end_round()?;
        }
        Ok(())
    }

    /// Sorts up to `n` words distributed one-per-player in `O(1)` rounds
    /// using Lenzen's sorting scheme \[Len13\] (the companion of his
    /// routing result), returning the sorted values.
    ///
    /// `values[p]` is the word initially held by player `p` (players
    /// beyond `values.len()` hold nothing); afterwards player `p` holds
    /// the `p`-th smallest. The simulator charges
    /// [`LENZEN_ROUTING_ROUNDS`] rounds and `values.len()` words.
    ///
    /// # Errors
    ///
    /// [`CliqueError::RoutingOverload`] if `values.len() > n` — each
    /// player can inject only one word into the sorting network.
    pub fn lenzen_sort(&mut self, values: &[u64]) -> Result<Vec<u64>, CliqueError> {
        if values.len() > self.n {
            return Err(CliqueError::RoutingOverload {
                player: self.n.saturating_sub(1),
                role: crate::error::RoutingRole::Sender,
                attempted_words: values.len(),
                capacity_words: self.n,
            });
        }
        self.ledger
            .record_completed(LENZEN_ROUTING_ROUNDS, values.len(), 1.min(values.len()))?;
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Ok(sorted)
    }
}

impl Substrate for CliqueNetwork {
    fn substrate_name(&self) -> &'static str {
        "congested-clique"
    }

    fn execution_trace(&self) -> &ExecutionTrace {
        self.ledger.trace()
    }
}

impl CliqueRoundCtx<'_> {
    /// Sends within the open round; see [`CliqueNetwork::send`].
    ///
    /// # Errors
    ///
    /// Same as [`CliqueNetwork::send`].
    pub fn send(&mut self, from: usize, to: usize, words: usize) -> Result<(), CliqueError> {
        self.net.send(from, to, words)
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.net.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_substrate::SubstrateError;

    fn is_round_protocol(e: &CliqueError) -> bool {
        matches!(
            e,
            CliqueError::Substrate(SubstrateError::RoundProtocol { .. })
        )
    }

    #[test]
    fn send_within_budget() {
        let mut net = CliqueNetwork::new(4).unwrap();
        net.round(|r| {
            r.send(0, 1, 1)?;
            r.send(1, 0, 1)?;
            r.send(2, 3, 1)
        })
        .unwrap();
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.total_words(), 3);
        assert_eq!(net.max_load_words(), 1);
    }

    #[test]
    fn per_link_budget_enforced() {
        let mut net = CliqueNetwork::new(4).unwrap();
        let err = net
            .round(|r| {
                r.send(0, 1, 1)?;
                r.send(0, 1, 1) // second word over same link, same round
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CliqueError::BandwidthExceeded { from: 0, to: 1, .. }
        ));
        assert_eq!(net.rounds(), 0, "failed round not counted");
    }

    #[test]
    fn different_links_independent() {
        let mut net = CliqueNetwork::new(4).unwrap();
        net.round(|r| {
            r.send(0, 1, 1)?;
            r.send(0, 2, 1)?;
            r.send(0, 3, 1)
        })
        .unwrap();
        assert_eq!(net.total_words(), 3);
    }

    #[test]
    fn wider_bandwidth() {
        let mut net = CliqueNetwork::with_bandwidth(3, 4).unwrap();
        net.round(|r| r.send(0, 1, 4)).unwrap();
        assert!(net.round(|r| r.send(0, 1, 5)).is_err());
    }

    #[test]
    fn link_budget_resets_between_rounds() {
        let mut net = CliqueNetwork::new(3).unwrap();
        net.round(|r| r.send(0, 1, 1)).unwrap();
        // Same link again in the next round must be allowed.
        net.round(|r| r.send(0, 1, 1)).unwrap();
        assert_eq!(net.rounds(), 2);
        assert_eq!(net.total_words(), 2);
    }

    #[test]
    fn invalid_players_rejected() {
        let mut net = CliqueNetwork::new(3).unwrap();
        assert!(matches!(
            net.round(|r| r.send(0, 3, 1)),
            Err(CliqueError::NoSuchPlayer { player: 3, .. })
        ));
        assert!(matches!(
            net.broadcast(5, 1),
            Err(CliqueError::NoSuchPlayer { .. })
        ));
    }

    #[test]
    fn protocol_violations() {
        let mut net = CliqueNetwork::new(3).unwrap();
        assert!(is_round_protocol(&net.send(0, 1, 1).unwrap_err()));
        assert!(is_round_protocol(&net.end_round().unwrap_err()));
        net.begin_round().unwrap();
        assert!(is_round_protocol(&net.begin_round().unwrap_err()));
    }

    #[test]
    fn broadcast_round_cost() {
        let mut net = CliqueNetwork::new(5).unwrap();
        assert_eq!(net.broadcast(0, 3).unwrap(), 3);
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.total_words(), 3 * 4);
        assert_eq!(net.broadcast(0, 0).unwrap(), 0);
        assert_eq!(net.rounds(), 3);
    }

    #[test]
    fn lenzen_route_within_capacity() {
        let mut net = CliqueNetwork::new(10).unwrap();
        // Everyone sends 5 words to player 0: total 45 <= n = 10? No — 45
        // words to one receiver exceeds... capacity is n*1 = 10 per player.
        // Use a feasible instance: each player sends 1 word to its
        // successor.
        let msgs: Vec<(usize, usize, usize)> = (0..10).map(|p| (p, (p + 1) % 10, 1)).collect();
        let rounds = net.lenzen_route(&msgs).unwrap();
        assert_eq!(rounds, LENZEN_ROUTING_ROUNDS);
        assert_eq!(net.rounds(), LENZEN_ROUTING_ROUNDS);
        assert_eq!(net.total_words(), 10);
    }

    #[test]
    fn lenzen_route_receiver_overload() {
        let mut net = CliqueNetwork::new(4).unwrap();
        // 3 senders each push 2 words to player 0: 6 > capacity 4.
        let msgs = vec![(1, 0, 2), (2, 0, 2), (3, 0, 2)];
        let err = net.lenzen_route(&msgs).unwrap_err();
        assert!(matches!(
            err,
            CliqueError::RoutingOverload {
                player: 0,
                role: RoutingRole::Receiver,
                ..
            }
        ));
    }

    #[test]
    fn lenzen_route_sender_overload() {
        let mut net = CliqueNetwork::new(4).unwrap();
        let msgs = vec![(0, 1, 3), (0, 2, 2)];
        let err = net.lenzen_route(&msgs).unwrap_err();
        assert!(matches!(
            err,
            CliqueError::RoutingOverload {
                player: 0,
                role: RoutingRole::Sender,
                ..
            }
        ));
    }

    #[test]
    fn all_to_all_accounting() {
        let mut net = CliqueNetwork::new(5).unwrap();
        let rounds = net.all_to_all(3).unwrap();
        assert_eq!(rounds, 3);
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.total_words(), 5 * 4 * 3);
        assert_eq!(net.max_load_words(), 4);
        assert_eq!(net.all_to_all(0).unwrap(), 0);
    }

    #[test]
    fn all_to_all_requires_closed_round() {
        let mut net = CliqueNetwork::new(3).unwrap();
        net.begin_round().unwrap();
        assert!(is_round_protocol(&net.all_to_all(1).unwrap_err()));
    }

    #[test]
    fn charge_rounds() {
        let mut net = CliqueNetwork::new(3).unwrap();
        net.charge_rounds(5).unwrap();
        assert_eq!(net.rounds(), 5);
    }

    #[test]
    fn network_is_a_substrate() {
        let mut net = CliqueNetwork::new(5).unwrap();
        net.broadcast(0, 2).unwrap();
        let s: &dyn Substrate = &net;
        assert_eq!(s.substrate_name(), "congested-clique");
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.total_words(), 2 * 4);
        assert_eq!(s.max_load_words(), 1, "one word per player per round");
        assert_eq!(s.execution_trace().per_round().len(), 2);
    }

    #[test]
    fn lenzen_route_rejects_open_round() {
        let mut net = CliqueNetwork::new(4).unwrap();
        net.begin_round().unwrap();
        assert!(is_round_protocol(
            &net.lenzen_route(&[(0, 1, 1)]).unwrap_err()
        ));
        assert!(is_round_protocol(&net.lenzen_sort(&[1, 2]).unwrap_err()));
    }

    #[test]
    fn zero_players_rejected() {
        assert!(CliqueNetwork::new(0).is_err());
        assert!(CliqueNetwork::with_bandwidth(3, 0).is_err());
    }

    #[test]
    fn lenzen_sort_sorts_in_constant_rounds() {
        let mut net = CliqueNetwork::new(8).unwrap();
        let sorted = net.lenzen_sort(&[5, 1, 9, 3]).unwrap();
        assert_eq!(sorted, vec![1, 3, 5, 9]);
        assert_eq!(net.rounds(), LENZEN_ROUTING_ROUNDS);
        // Empty input is fine.
        assert!(net.lenzen_sort(&[]).unwrap().is_empty());
    }

    #[test]
    fn lenzen_sort_rejects_overfull_input() {
        let mut net = CliqueNetwork::new(3).unwrap();
        assert!(matches!(
            net.lenzen_sort(&[1, 2, 3, 4]),
            Err(CliqueError::RoutingOverload { .. })
        ));
    }
}
