//! # mmvc-clique
//!
//! A local simulator of the **CONGESTED-CLIQUE** model of distributed
//! computing (Lotker–Pavlov–Patt-Shamir–Peleg), the second substrate of the
//! PODC'18 paper this workspace reproduces (paper, Section 1.1.2).
//!
//! In this model, `n` players communicate in synchronous rounds; in each
//! round every ordered pair of players can exchange `O(log n)` bits (one
//! *word* here). The simulator meters per-link bandwidth and rounds, and
//! implements the two communication primitives the paper's algorithms rely
//! on:
//!
//! * **broadcast** — one player sends the same words to all others, paying
//!   `ceil(words / bandwidth)` rounds;
//! * **Lenzen's routing scheme** \[Len13\] — any routing instance where
//!   each player sends/receives at most `n` words completes in `O(1)`
//!   rounds; the simulator *checks the precondition* and fails with
//!   [`CliqueError::RoutingOverload`] when an algorithm violates it.
//!
//! ```
//! use mmvc_clique::{CliqueNetwork, Substrate};
//!
//! let mut net = CliqueNetwork::new(16)?;
//! // Leader 0 collects one word from everyone via Lenzen routing.
//! let msgs: Vec<(usize, usize, usize)> = (1..16).map(|p| (p, 0, 1)).collect();
//! net.lenzen_route(&msgs)?;
//! assert!(net.rounds() >= 1);
//! # Ok::<(), mmvc_clique::CliqueError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;

pub use error::{CliqueError, RoutingRole};
pub use network::{CliqueNetwork, CliqueRoundCtx, LENZEN_ROUTING_ROUNDS};
// The trace types and the round engine are shared with the MPC substrate
// and live in `mmvc-substrate`; re-exported here for convenience.
pub use mmvc_substrate::{
    ExecutionTrace, ExecutorConfig, RoundLedger, RoundSummary, Substrate, SubstrateError,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn broadcast_cost_is_ceiling(n in 2usize..20, words in 0usize..40, bw in 1usize..5) {
            let mut net = CliqueNetwork::with_bandwidth(n, bw).unwrap();
            let rounds = net.broadcast(0, words).unwrap();
            prop_assert_eq!(rounds, words.div_ceil(bw));
            prop_assert_eq!(net.total_words(), words * (n - 1));
        }

        #[test]
        fn routing_feasible_iff_loads_ok(
            n in 2usize..12,
            raw in proptest::collection::vec((0usize..12, 0usize..12, 0usize..6), 0..30)
        ) {
            let msgs: Vec<(usize, usize, usize)> = raw
                .into_iter()
                .map(|(f, t, w)| (f % n, t % n, w))
                .collect();
            let mut out = vec![0usize; n];
            let mut inc = vec![0usize; n];
            for &(f, t, w) in &msgs {
                out[f] += w;
                inc[t] += w;
            }
            let feasible = (0..n).all(|p| out[p] <= n && inc[p] <= n);
            let mut net = CliqueNetwork::new(n).unwrap();
            let result = net.lenzen_route(&msgs);
            prop_assert_eq!(result.is_ok(), feasible);
        }
    }
}
