//! Maximal matching by edge filtering, after Lattanzi–Moseley–Suri–
//! Vassilvitskii \[LMSV11\].
//!
//! The paper invokes this algorithm in Section 4.4.5 to handle graphs whose
//! maximum matching is small (`O(log¹⁰ n)`): with `Θ(n)` memory per
//! machine, repeatedly sample a machine-sized set of edges, compute a
//! maximal matching of the sample on one machine, discard matched vertices
//! — the number of surviving edges halves per round w.h.p. (their
//! Lemma 3.2), so `O(log n)` rounds always suffice and `O(log log n)`
//! rounds suffice once the edge count is polynomially close to `n`.
//!
//! It also serves as the per-weight-class maximal matching subroutine of
//! the Corollary 1.4 weighted algorithm, and as a baseline in the round
//! comparison experiment (E7).

use crate::error::CoreError;
use crate::PAR_CHUNK;
use mmvc_graph::matching::Matching;
use mmvc_graph::Graph;
use mmvc_mpc::{Cluster, MpcConfig};
use mmvc_substrate::{Bitset, ExecutorConfig, Substrate};

/// Configuration for [`filtering_maximal_matching`].
#[derive(Debug, Clone, PartialEq)]
pub struct FilteringConfig {
    /// Seed for the per-round edge sampling.
    pub seed: u64,
    /// Per-machine memory is `space_factor · n` words.
    pub space_factor: f64,
    /// How per-machine local work executes (results are identical for any
    /// executor; see [`ExecutorConfig`]).
    pub executor: ExecutorConfig,
}

impl FilteringConfig {
    /// Default configuration: `8n` words per machine, threaded executor.
    pub fn new(seed: u64) -> Self {
        FilteringConfig {
            seed,
            space_factor: 8.0,
            executor: ExecutorConfig::default(),
        }
    }
}

/// Output of [`filtering_maximal_matching`].
#[derive(Debug, Clone)]
pub struct FilteringOutcome {
    /// The maximal matching.
    pub matching: Matching,
    /// Filtering iterations executed (excluding the final gather).
    pub filter_rounds: usize,
    /// The metered MPC execution.
    pub trace: mmvc_substrate::ExecutionTrace,
}

/// Computes a maximal matching with the \[LMSV11\] filtering algorithm
/// under `Θ(n)` words of memory per machine.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a non-positive `space_factor`.
/// * [`CoreError::Mpc`] if an unexpected sampling deviation overflows the
///   machine budget (probability vanishing in the budget slack).
///
/// # Examples
///
/// ```
/// use mmvc_core::filtering::{filtering_maximal_matching, FilteringConfig};
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(300, 0.1, 1)?;
/// let out = filtering_maximal_matching(&g, &FilteringConfig::new(7))?;
/// assert!(out.matching.is_maximal(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn filtering_maximal_matching(
    g: &Graph,
    config: &FilteringConfig,
) -> Result<FilteringOutcome, CoreError> {
    if !config.space_factor.is_finite() || config.space_factor <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "space_factor",
            message: format!("must be positive, got {}", config.space_factor),
        });
    }
    let n = g.num_vertices();
    let budget = ((config.space_factor * n.max(1) as f64).ceil() as usize).max(64);
    let machines = (4 * g.edge_words()).div_ceil(budget).max(2);
    let exec = config.executor.clone().ensure_scratch();
    let pool = exec
        .scratch()
        .expect("ensure_scratch installs a pool")
        .clone();
    let mut cluster = Cluster::new(MpcConfig::new(machines, budget)?).with_executor(exec.clone());

    let mut matching = Matching::empty(n);
    // Word-packed covered-vertex mask mirroring `matching.covers`: the
    // drop-edge scan below probes two endpoints per surviving edge, so a
    // 1-bit-per-vertex mask replaces the 8-byte mate-array probes.
    let mut covered = Bitset::new_in(&pool, n);
    // Surviving edge indices (both endpoints unmatched).
    // Surviving edges as `(index, u, v)`: the index is the stateless
    // sampling identity (it feeds `hash3`, so the sampled set is pinned),
    // the endpoints are decoded from the edge view once, here — the
    // per-round passes below then touch them in O(1) instead of
    // re-deriving them from the CSR arrays per probe.
    let mut alive: Vec<(u32, u32, u32)> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (i as u32, e.u(), e.v()))
        .collect();
    let mut filter_rounds = 0usize;
    // O(log m) rounds always suffice (edges halve w.h.p.); the cap guards
    // against adversarially unlucky sampling.
    let cap = 4 * (g.num_edges().max(2) as f64).log2().ceil() as usize + 8;

    while 2 * alive.len() > budget && filter_rounds < cap {
        // Sample each surviving edge with probability p = budget/(4·words)
        // so the expected sample size is budget/4 words — w.h.p. within
        // budget.
        let p = budget as f64 / (4.0 * 2.0 * alive.len() as f64);
        // Per-machine local work: every machine samples its share of the
        // surviving edges with the stateless per-edge hash. Flattening the
        // fixed chunks in order reproduces the sequential sample exactly.
        let sample: Vec<(u32, u32, u32)> = exec
            .run_chunked(alive.len(), PAR_CHUNK, |range| {
                alive[range]
                    .iter()
                    .copied()
                    .filter(|&(ei, _, _)| {
                        mmvc_graph::rng::hash3_unit(config.seed, filter_rounds as u64, ei as u64)
                            < p
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        // One MPC round: machine 0 receives the sampled edges.
        cluster.round(|r| r.receive(0, 2 * sample.len()))?;

        // Machine 0: greedy maximal matching on the sample, restricted to
        // currently unmatched vertices (all sampled edges qualify since
        // `alive` was filtered already).
        let mut local = Matching::empty(n);
        for &(_, u, v) in &sample {
            local.try_add(u, v);
        }

        // One MPC round: broadcast newly matched vertices.
        let newly = 2 * local.len();
        cluster.round(|r| r.broadcast(newly.min(budget)))?;
        let added = matching.absorb(&local);
        // Every sampled edge had both endpoints uncovered (alive was
        // filtered last round), so the absorb adds all of `local`.
        debug_assert_eq!(added, local.len());
        for e in local.edges() {
            covered.set(e.u() as usize);
            covered.set(e.v() as usize);
        }

        // Drop edges with a matched endpoint (same chunked filter).
        alive = exec
            .run_chunked(alive.len(), PAR_CHUNK, |range| {
                alive[range]
                    .iter()
                    .copied()
                    .filter(|&(_, u, v)| !covered.get(u as usize) && !covered.get(v as usize))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        filter_rounds += 1;
    }
    covered.recycle(&pool);

    // Final gather: the remaining graph fits on one machine.
    if !alive.is_empty() {
        cluster.round(|r| r.receive(0, 2 * alive.len()))?;
        for &(_, u, v) in &alive {
            matching.try_add(u, v);
        }
    }

    debug_assert!(matching.is_maximal(g));
    Ok(FilteringOutcome {
        matching,
        filter_rounds,
        trace: cluster.execution_trace().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    #[test]
    fn maximal_on_assorted_graphs() {
        for seed in 0..5u64 {
            for g in [
                generators::gnp(300, 0.05, seed).unwrap(),
                generators::gnp(100, 0.5, seed).unwrap(),
                generators::power_law(200, 2.3, 8.0, seed).unwrap(),
                generators::star(50),
                generators::cycle(33),
            ] {
                let out = filtering_maximal_matching(&g, &FilteringConfig::new(seed)).unwrap();
                assert!(out.matching.is_maximal(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = mmvc_graph::Graph::empty(10);
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(0)).unwrap();
        assert!(out.matching.is_empty());
        assert_eq!(out.filter_rounds, 0);
    }

    #[test]
    fn small_graph_single_gather() {
        // Fits on one machine: zero filter rounds, one gather round.
        let g = generators::gnp(50, 0.1, 1).unwrap();
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(1)).unwrap();
        assert_eq!(out.filter_rounds, 0);
        assert_eq!(out.trace.rounds(), 1);
    }

    #[test]
    fn dense_graph_uses_filtering() {
        // n=400, p=0.5: ~40k edges >> 8n/2 = 1600 edge budget.
        let g = generators::gnp(400, 0.5, 2).unwrap();
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(2)).unwrap();
        assert!(out.filter_rounds >= 1, "expected filtering rounds");
        assert!(out.matching.is_maximal(&g));
        // Memory budget respected throughout (would have errored otherwise).
        assert!(out.trace.max_load_words() <= 8 * 400);
    }

    #[test]
    fn rounds_logarithmic_ish() {
        // Edge halving => filter rounds ~ log(E/S).
        let g = generators::gnp(500, 0.4, 3).unwrap();
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(3)).unwrap();
        assert!(
            out.filter_rounds <= 30,
            "too many filter rounds: {}",
            out.filter_rounds
        );
    }

    #[test]
    fn half_approximation() {
        let g = generators::gnp(200, 0.1, 4).unwrap();
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(4)).unwrap();
        let opt = mmvc_graph::matching::blossom(&g).len();
        assert!(2 * out.matching.len() >= opt);
    }

    #[test]
    fn rejects_bad_space_factor() {
        let g = generators::path(3);
        let cfg = FilteringConfig {
            space_factor: -1.0,
            ..FilteringConfig::new(0)
        };
        assert!(matches!(
            filtering_maximal_matching(&g, &cfg),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(300, 0.2, 5).unwrap();
        let a = filtering_maximal_matching(&g, &FilteringConfig::new(9)).unwrap();
        let b = filtering_maximal_matching(&g, &FilteringConfig::new(9)).unwrap();
        assert_eq!(a.matching.edges(), b.matching.edges());
    }
}
