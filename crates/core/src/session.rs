//! Warm-state sessions: a resident graph plus the prior run's witness
//! state, re-run incrementally after batched [`GraphDelta`] updates.
//!
//! A [`Session`] is the core-layer object behind the serve tier's
//! `POST /session` / `POST /update` endpoints: it owns the workload
//! graph, applies deltas through the CSR delta-merge rebuild
//! ([`Graph::apply_delta_with`]), and re-runs the spec's algorithm from
//! the surviving warm state instead of cold:
//!
//! * **Greedy MIS** re-seeds from the surviving independent set: members
//!   adjacent to an *inserted* edge are dropped (larger id loses, a
//!   deterministic tie-break), then greedy re-insertion runs over the
//!   **affected frontier only** — endpoints of churned edges plus
//!   neighbors of dropped members, in ascending id order.
//! * **(1+ε) matching** keeps every surviving matched pair (deleted
//!   edges are pruned as updates land) and repairs with the same
//!   [`augmentation_pass`] machinery the cold Corollary 1.3 run uses,
//!   until a pass flips nothing.
//! * Every other algorithm kind falls back to a cold run (still inside
//!   the session, so it re-warms the state).
//!
//! **Soundness of the MIS frontier restriction.** After the drop phase,
//! members are only ever *added*: a non-member can become addable only
//! if every blocker left the set or every blocking edge was deleted.
//! Blockers leave the set only in the drop phase (making the non-member
//! a neighbor-of-dropped, hence frontier) and edges disappear only via
//! the delta (making both endpoints frontier). So every potentially
//! addable vertex is scanned, and the result is again maximal; vertices
//! outside the frontier keep at least one blocker, so independence and
//! maximality both survive. The claim is not trusted: incremental
//! reports run the **same witness validators** (`is_maximal`,
//! `matching_in_graph`) and the same budget checks as cold runs, and
//! [`Session::run_incremental_with`]'s `verify_cold` knob additionally
//! cross-checks witness validity against a fresh cold run (used by the
//! test suite and `bench_update`).
//!
//! # Examples
//!
//! ```
//! use mmvc_core::run::{AlgorithmKind, RunSpec};
//! use mmvc_core::session::Session;
//! use mmvc_graph::GraphDelta;
//!
//! let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
//! spec.n = Some(256);
//! let mut session = Session::new(&spec)?;
//! let cold = session.run_cold()?;
//! assert!(cold.ok());
//!
//! let mut delta = GraphDelta::new();
//! delta.insert_edge(0, 1)?;
//! delta.delete_edge(2, 3)?;
//! let update = session.apply_update(&delta)?;
//! assert_eq!(update.generation, 1);
//!
//! let warm = session.run_incremental()?;
//! assert!(warm.ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::CoreError;
use crate::matching::augmentation_pass;
use crate::run::{
    build_workload, log_log2, matching_in_graph, run_detailed, AlgorithmKind, MetricValue,
    RunArtifacts, RunReport, RunSpec, SubstrateReport, WitnessStat,
};
use mmvc_graph::matching::Matching;
use mmvc_graph::mis::IndependentSet;
use mmvc_graph::{Graph, GraphDelta, VertexId};
use mmvc_substrate::ExecutionTrace;

/// Witness state surviving from the previous run, the seed of the next
/// incremental one.
#[derive(Debug, Clone)]
enum Warm {
    /// Members of the previous maximal independent set.
    Mis(Vec<VertexId>),
    /// Matched pairs of the previous maximal matching (pruned as edge
    /// deletions land).
    Matching(Vec<(VertexId, VertexId)>),
}

/// Outcome of [`Session::apply_update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The session generation after this update (starts at 0, +1 per
    /// applied delta) — the serve tier folds this into its cache key.
    pub generation: u64,
    /// Edges in the mutated graph.
    pub num_edges: usize,
    /// Normalized insert ops applied (including no-ops on present edges).
    pub inserted: usize,
    /// Normalized delete ops applied (including no-ops on absent edges).
    pub deleted: usize,
}

/// A resident workload: graph + spec + warm witness state + generation
/// counter. See the module docs for the incremental re-run semantics.
#[derive(Debug)]
pub struct Session {
    spec: RunSpec,
    label: String,
    graph: Graph,
    generation: u64,
    warm: Option<Warm>,
    /// Canonical (u < v) churned edges since the last run, the MIS
    /// frontier's raw material. Cleared by every run.
    pending_ins: Vec<(VertexId, VertexId)>,
    pending_del: Vec<(VertexId, VertexId)>,
}

impl Session {
    /// Builds the spec's workload (scenario or graph file) and takes
    /// residence. The spec's executor is upgraded to carry a scratch
    /// arena, so delta rebuilds and re-runs share one pool for the
    /// session's lifetime.
    ///
    /// # Errors
    ///
    /// Whatever [`build_workload`] reports: unknown scenario, unloadable
    /// graph file, or an admission-cap refusal.
    pub fn new(spec: &RunSpec) -> Result<Session, CoreError> {
        let mut spec = spec.clone();
        spec.executor = spec.executor.clone().ensure_scratch();
        let (graph, label) = build_workload(&spec)?;
        Ok(Session {
            spec,
            label,
            graph,
            generation: 0,
            warm: None,
            pending_ins: Vec::new(),
            pending_del: Vec::new(),
        })
    }

    /// The resident graph at the current generation.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The spec this session runs (executor scratch-upgraded).
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The workload label reports carry as their scenario name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Updates applied so far (0 for a fresh session).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether warm witness state is available (i.e. a run has completed
    /// and the algorithm kind supports incremental re-runs).
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// Applies a batched delta through the CSR delta-merge rebuild and
    /// bumps the generation. The predecessor graph's arrays are recycled
    /// into the session arena, so steady-state updates allocate ~zero
    /// fresh bytes.
    ///
    /// # Errors
    ///
    /// [`mmvc_graph::GraphError::VertexOutOfRange`] (as [`CoreError`])
    /// when the delta names a vertex outside the workload.
    pub fn apply_update(&mut self, delta: &GraphDelta) -> Result<UpdateOutcome, CoreError> {
        let telemetry = self.spec.executor.telemetry().clone();
        let mut span = telemetry.span("session.apply_update");
        let (ins, del) = delta.normalized(self.graph.num_vertices())?;
        span.arg("inserted", ins.len() as u64);
        span.arg("deleted", del.len() as u64);
        let next = self.graph.apply_delta_with(delta, &self.spec.executor)?;
        let prev = std::mem::replace(&mut self.graph, next);
        prev.recycle(&self.spec.executor);
        self.generation += 1;
        self.pending_ins.extend(ins.iter().map(|e| (e.u(), e.v())));
        self.pending_del.extend(del.iter().map(|e| (e.u(), e.v())));
        // A matching loses deleted pairs immediately; everything else is
        // repaired at run time.
        let graph = &self.graph;
        if let Some(Warm::Matching(pairs)) = &mut self.warm {
            pairs.retain(|&(u, v)| graph.has_edge(u, v));
        }
        Ok(UpdateOutcome {
            generation: self.generation,
            num_edges: self.graph.num_edges(),
            inserted: ins.len(),
            deleted: del.len(),
        })
    }

    /// Runs the spec cold on the resident graph, re-warming the witness
    /// state (for [`AlgorithmKind::GreedyMis`] and
    /// [`AlgorithmKind::OnePlusEpsMatching`]).
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`CoreError`].
    pub fn run_cold(&mut self) -> Result<RunReport, CoreError> {
        let (mut report, artifacts) = run_detailed(&self.graph, &self.label, &self.spec)?;
        self.warm = match &artifacts {
            RunArtifacts::GreedyMis(out) => Some(Warm::Mis(out.mis.members().to_vec())),
            RunArtifacts::OnePlusEps(out) => Some(Warm::Matching(
                out.matching
                    .edges()
                    .iter()
                    .map(|e| (e.u(), e.v()))
                    .collect(),
            )),
            _ => None,
        };
        self.pending_ins.clear();
        self.pending_del.clear();
        report
            .metrics
            .push(("incremental", MetricValue::Flag(false)));
        report
            .metrics
            .push(("generation", MetricValue::Int(self.generation as i64)));
        Ok(report)
    }

    /// Re-runs from warm state. See
    /// [`run_incremental_with`](Self::run_incremental_with).
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`CoreError`].
    pub fn run_incremental(&mut self) -> Result<RunReport, CoreError> {
        self.run_incremental_with(false)
    }

    /// Re-runs the spec from warm witness state: MIS frontier repair or
    /// matching augmentation (see the module docs), falling back to a
    /// cold run when no warm state exists or the kind does not support
    /// incremental re-runs. The report carries the same witness
    /// validators and budget checks as a cold run, plus the
    /// `incremental` / `generation` metrics.
    ///
    /// With `verify_cold`, a fresh cold run of the same spec on the same
    /// graph is executed afterwards and the incremental report must
    /// match its witness validity — a test-and-bench knob, not a serving
    /// mode.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`CoreError`];
    /// [`CoreError::InvalidParameter`] when `verify_cold` finds a
    /// divergence.
    pub fn run_incremental_with(&mut self, verify_cold: bool) -> Result<RunReport, CoreError> {
        let telemetry = self.spec.executor.telemetry().clone();
        let report = match (&self.warm, self.spec.algorithm) {
            (Some(Warm::Mis(_)), AlgorithmKind::GreedyMis) => {
                let _span = telemetry.span_tagged("session.run_incremental", "mis-repair");
                self.rerun_mis()?
            }
            (Some(Warm::Matching(_)), AlgorithmKind::OnePlusEpsMatching) => {
                let _span = telemetry.span_tagged("session.run_incremental", "matching-augment");
                self.rerun_matching()?
            }
            _ => {
                let _span = telemetry.span_tagged("session.run_incremental", "cold-fallback");
                self.run_cold()?
            }
        };
        if verify_cold {
            let (cold, _) = run_detailed(&self.graph, &self.label, &self.spec)?;
            if !report.witnesses_valid() || !cold.witnesses_valid() {
                return Err(CoreError::InvalidParameter {
                    name: "verify_cold",
                    message: format!(
                        "witness validity diverged at generation {}: incremental {} vs cold {}",
                        self.generation,
                        report.witnesses_valid(),
                        cold.witnesses_valid()
                    ),
                });
            }
        }
        Ok(report)
    }

    /// MIS repair: drop members adjacent to inserted edges, then greedy
    /// re-insertion over the affected frontier in ascending id order.
    fn rerun_mis(&mut self) -> Result<RunReport, CoreError> {
        let start = std::time::Instant::now();
        let g = &self.graph;
        let n = g.num_vertices();
        let members = match &self.warm {
            Some(Warm::Mis(m)) => m.clone(),
            _ => unreachable!("caller matched Warm::Mis"),
        };
        let mut mask = vec![false; n];
        for &v in &members {
            mask[v as usize] = true;
        }

        // Drop phase: an inserted edge inside the set evicts the larger
        // endpoint (deterministic; processed in canonical edge order).
        let mut churn = self.pending_ins.clone();
        churn.sort_unstable();
        let mut dropped = Vec::new();
        for &(u, v) in &churn {
            if mask[u as usize] && mask[v as usize] {
                let loser = u.max(v);
                mask[loser as usize] = false;
                dropped.push(loser);
            }
        }

        // Frontier: endpoints of churned edges + neighbors of dropped
        // members. Nothing else can have become addable (module docs).
        let mut frontier: Vec<VertexId> = Vec::new();
        for &(u, v) in self.pending_ins.iter().chain(self.pending_del.iter()) {
            frontier.push(u);
            frontier.push(v);
        }
        for &d in &dropped {
            frontier.extend_from_slice(g.neighbors(d));
        }
        frontier.sort_unstable();
        frontier.dedup();

        let mut readded = 0usize;
        for &v in &frontier {
            if mask[v as usize] {
                continue;
            }
            if g.neighbors(v).iter().all(|&w| !mask[w as usize]) {
                mask[v as usize] = true;
                readded += 1;
            }
        }

        let survivors: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask[v as usize]).collect();
        let (size, valid, new_members) = match IndependentSet::new(g, survivors.iter().copied()) {
            Some(set) => (set.len(), set.is_maximal(g), survivors),
            None => (survivors.len(), false, members),
        };
        let witness = WitnessStat {
            kind: "mis",
            size,
            valid,
        };
        // One drop round + one frontier re-insertion round, against the
        // paper's cold-run claim for this graph.
        let substrate = SubstrateReport::from_rounds("mpc", 2, log_log2(g.max_degree().max(4)));
        let metrics = vec![
            ("incremental", MetricValue::Flag(true)),
            ("generation", MetricValue::Int(self.generation as i64)),
            ("frontier", MetricValue::Int(frontier.len() as i64)),
            ("dropped", MetricValue::Int(dropped.len() as i64)),
            ("readded", MetricValue::Int(readded as i64)),
        ];
        let report = self.finish(vec![witness], substrate, metrics, start);
        self.warm = Some(Warm::Mis(new_members));
        self.pending_ins.clear();
        self.pending_del.clear();
        Ok(report)
    }

    /// Matching repair: keep the surviving pairs, then run the cold
    /// path's augmentation passes until one flips nothing.
    fn rerun_matching(&mut self) -> Result<RunReport, CoreError> {
        let start = std::time::Instant::now();
        let pairs = match &self.warm {
            Some(Warm::Matching(p)) => p.clone(),
            _ => unreachable!("caller matched Warm::Matching"),
        };
        let g = &self.graph;
        let surviving = pairs.len();
        let Some(mut matching) = Matching::new(g, pairs) else {
            // A stale pair (should be pruned at update time): re-warm
            // from a cold run instead of guessing.
            return self.run_cold();
        };
        let k = (1.0 / self.spec.eps.get()).ceil() as usize;
        let path_limit = 2 * k - 1;
        let max_passes = 8 * k;
        let mut passes = 0usize;
        let mut augmentations = 0usize;
        while passes < max_passes {
            let flipped = augmentation_pass(g, &mut matching, path_limit);
            passes += 1;
            augmentations += flipped;
            if flipped == 0 {
                break;
            }
        }
        let witness = WitnessStat {
            kind: "matching",
            size: matching.len(),
            valid: matching_in_graph(g, &matching) && matching.is_maximal(g),
        };
        let substrate = SubstrateReport::from_rounds(
            "mpc",
            passes,
            log_log2(g.num_vertices()) / self.spec.eps.get(),
        );
        let metrics = vec![
            ("incremental", MetricValue::Flag(true)),
            ("generation", MetricValue::Int(self.generation as i64)),
            ("surviving", MetricValue::Int(surviving as i64)),
            ("repair_passes", MetricValue::Int(passes as i64)),
            ("augmentations", MetricValue::Int(augmentations as i64)),
        ];
        let report = self.finish(vec![witness], substrate, metrics, start);
        self.warm = Some(Warm::Matching(
            matching.edges().iter().map(|e| (e.u(), e.v())).collect(),
        ));
        self.pending_ins.clear();
        self.pending_del.clear();
        Ok(report)
    }

    /// Assembles an incremental report with the same budget checks as
    /// [`run_detailed`].
    fn finish(
        &self,
        witnesses: Vec<WitnessStat>,
        substrate: SubstrateReport,
        metrics: Vec<(&'static str, MetricValue)>,
        start: std::time::Instant,
    ) -> RunReport {
        let mut budget_violations = Vec::new();
        if let Some(cap) = self.spec.budget.max_n {
            if self.graph.num_vertices() > cap {
                budget_violations.push(format!(
                    "workload has {} vertices, exceeding the admission cap max_n = {cap}",
                    self.graph.num_vertices()
                ));
            }
        }
        if let Some(max) = self.spec.budget.max_rounds {
            if substrate.rounds > max {
                budget_violations.push(format!("rounds {} exceed budget {max}", substrate.rounds));
            }
        }
        if let Some(max) = self.spec.budget.max_load_words {
            if !substrate.metered {
                budget_violations.push(format!(
                    "load budget {max} set, but incremental {} does not meter per-machine load",
                    self.spec.algorithm.name()
                ));
            } else if substrate.max_load_words > max {
                budget_violations.push(format!(
                    "max load {} words exceeds budget {max}",
                    substrate.max_load_words
                ));
            }
        }
        RunReport {
            algorithm: self.spec.algorithm,
            scenario: self.label.clone(),
            n: self.graph.num_vertices(),
            num_edges: self.graph.num_edges(),
            max_degree: self.graph.max_degree(),
            eps: self.spec.eps.get(),
            seed: self.spec.seed,
            witnesses,
            substrate,
            trace: ExecutionTrace::new(),
            metrics,
            budget_violations,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::rng::hash2;

    fn spec(kind: AlgorithmKind, scenario: &str, n: usize) -> RunSpec {
        let mut s = RunSpec::new(kind, scenario);
        s.n = Some(n);
        s
    }

    /// A seeded churn delta over the session's current graph: ~half
    /// deletes of existing edges, ~half inserts of fresh ones.
    fn churn(session: &Session, ops: usize, salt: u64) -> GraphDelta {
        let g = session.graph();
        let n = g.num_vertices() as u64;
        let mut delta = GraphDelta::new();
        let edges: Vec<_> = g.edges().iter().collect();
        for i in 0..ops {
            let h = hash2(salt, i as u64);
            if i % 2 == 0 && !edges.is_empty() {
                let e = edges[(h % edges.len() as u64) as usize];
                delta.delete_edge(e.u(), e.v()).unwrap();
            } else {
                let a = (h % n) as VertexId;
                let b = ((h >> 32) % n) as VertexId;
                if a != b {
                    delta.insert_edge(a, b).unwrap();
                }
            }
        }
        delta
    }

    #[test]
    fn mis_incremental_matches_cold_validity_across_generations() {
        let mut session = Session::new(&spec(AlgorithmKind::GreedyMis, "gnp-sparse", 300)).unwrap();
        let cold = session.run_cold().unwrap();
        assert!(cold.ok());
        assert!(session.is_warm());
        for round in 0..5u64 {
            session.apply_update(&churn(&session, 6, round)).unwrap();
            let report = session.run_incremental_with(true).unwrap();
            assert!(
                report.ok(),
                "generation {round}: {:?}",
                report.budget_violations
            );
            assert_eq!(report.metric("incremental"), Some(&MetricValue::Flag(true)));
            assert_eq!(
                report.metric("generation"),
                Some(&MetricValue::Int(round as i64 + 1))
            );
        }
    }

    #[test]
    fn matching_incremental_matches_cold_validity_across_generations() {
        let mut session =
            Session::new(&spec(AlgorithmKind::OnePlusEpsMatching, "gnp-sparse", 200)).unwrap();
        assert!(session.run_cold().unwrap().ok());
        for round in 0..4u64 {
            session
                .apply_update(&churn(&session, 4, 100 + round))
                .unwrap();
            let report = session.run_incremental_with(true).unwrap();
            assert!(report.ok(), "generation {round}");
            assert_eq!(report.metric("incremental"), Some(&MetricValue::Flag(true)));
        }
    }

    #[test]
    fn first_incremental_run_is_cold() {
        let mut session = Session::new(&spec(AlgorithmKind::GreedyMis, "gnp-sparse", 128)).unwrap();
        let report = session.run_incremental().unwrap();
        assert!(report.ok());
        assert_eq!(
            report.metric("incremental"),
            Some(&MetricValue::Flag(false))
        );
        assert!(session.is_warm());
    }

    #[test]
    fn unsupported_kinds_fall_back_to_cold() {
        let mut session = Session::new(&spec(AlgorithmKind::LubyMis, "gnp-sparse", 128)).unwrap();
        assert!(session.run_cold().unwrap().ok());
        session.apply_update(&churn(&session, 4, 9)).unwrap();
        let report = session.run_incremental().unwrap();
        assert!(report.ok());
        assert_eq!(
            report.metric("incremental"),
            Some(&MetricValue::Flag(false))
        );
    }

    #[test]
    fn update_tracks_generation_and_edge_count() {
        let mut session = Session::new(&spec(AlgorithmKind::GreedyMis, "gnp-sparse", 64)).unwrap();
        assert_eq!(session.generation(), 0);
        let before = session.graph().num_edges();
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 1).unwrap();
        delta.insert_edge(0, 2).unwrap();
        let out = session.apply_update(&delta).unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!(out.inserted, 2);
        assert!(out.num_edges >= before, "inserts never shrink the graph");
        assert_eq!(session.generation(), 1);
    }

    #[test]
    fn out_of_range_update_is_refused() {
        let mut session = Session::new(&spec(AlgorithmKind::GreedyMis, "gnp-sparse", 64)).unwrap();
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 64).unwrap();
        assert!(session.apply_update(&delta).is_err());
        assert_eq!(session.generation(), 0, "failed updates do not bump");
    }
}
