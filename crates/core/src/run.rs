//! The unified run driver: one entry point for every `(algorithm,
//! scenario)` pair in the workspace.
//!
//! The paper states one family of claims — round counts, load budgets,
//! approximation ratios — across five algorithm families and two
//! substrates. This module checks them through one code path instead of
//! per-binary plumbing: a [`RunSpec`] names an [`AlgorithmKind`] and a
//! workload from the [`mmvc_graph::scenarios`] registry, [`run`] executes
//! it, validates the witnesses (maximality, coverage, feasibility), and
//! returns a [`RunReport`] carrying the measured substrate quantities
//! next to the paper's claimed round bound, the full
//! [`ExecutionTrace`], algorithm-specific metrics, and wall time.
//!
//! The CLI (`mmvc run` / `mmvc list` / `mmvc bench`), the 13 experiment
//! binaries, and the `bench_report` sweep are all thin declarations over
//! this driver; `mmvc_bench` serializes reports to JSON.
//!
//! Determinism: a [`RunReport`] (minus [`RunReport::wall_ms`]) is a pure
//! function of the spec — the same spec yields byte-identical serialized
//! reports, and by the round engine's contract the executor never changes
//! a reported number, only wall time.
//!
//! ```
//! use mmvc_core::run::{run, AlgorithmKind, RunSpec};
//!
//! let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
//! spec.n = Some(256);
//! let report = run(&spec)?;
//! assert!(report.ok());
//! assert_eq!(report.witnesses[0].kind, "mis");
//! # Ok::<(), mmvc_core::CoreError>(())
//! ```

use crate::baselines::luby_mis;
use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::filtering::{filtering_maximal_matching, FilteringConfig, FilteringOutcome};
use crate::matching::{
    integral_matching, mpc_simulation, one_plus_eps_matching, run_central, AugmentConfig,
    AugmentOutcome, CentralConfig, CentralOutcome, IntegralMatchingConfig, IntegralMatchingOutcome,
    MpcMatchingConfig, MpcMatchingOutcome, ThresholdMode, WeightedMatchingConfig,
    WeightedMatchingOutcome,
};
use crate::mis::{
    clique_mis, ghaffari_local_mis, greedy_mpc_mis, CliqueMisConfig, CliqueMisOutcome,
    GreedyMisConfig, GreedyMisOutcome, LocalMisConfig, LocalMisOutcome,
};
use crate::vertex_cover::{approx_min_vertex_cover, VertexCoverConfig, VertexCoverOutcome};
use mmvc_graph::mis::IndependentSet;
use mmvc_graph::scenarios;
use mmvc_graph::weighted::WeightedGraph;
use mmvc_graph::Graph;
use mmvc_substrate::{ExecutionTrace, ExecutorConfig, Substrate};

/// Seed salt separating the weight stream of [`weighted_instance`] from
/// the algorithm's own randomness.
const WEIGHT_SEED_SALT: u64 = 0x5747_4D4D; // "WGMM"

/// `log₂ log₂ n`, the reference curve for the paper's round bounds
/// (clamped at `n = 4` so it stays positive).
pub fn log_log2(n: usize) -> f64 {
    (n.max(4) as f64).log2().log2()
}

/// Every algorithm family the driver can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Theorem 1.1 — MIS in `O(log log Δ)` MPC rounds.
    GreedyMis,
    /// Theorem 1.1 — MIS in `O(log log Δ)` CONGESTED-CLIQUE rounds.
    CliqueMis,
    /// Theorem 2.1 substitute — Ghaffari's desire-level local MIS.
    LocalMis,
    /// Baseline §1.2 — Luby's `O(log n)` MIS.
    LubyMis,
    /// Lemma 4.1 — the centralized `Central-Rand` process.
    Central,
    /// Lemma 4.2 — `MPC-Simulation` (fractional matching + cover).
    MpcMatching,
    /// §4.4.5 — LMSV filtering maximal matching.
    Filtering,
    /// Theorem 1.2 — integral `(2+ε)` matching and cover.
    IntegralMatching,
    /// Corollary 1.3 — `(1+ε)` matching by augmentation.
    OnePlusEpsMatching,
    /// Corollary 1.4 — `(2+ε)` weighted matching.
    WeightedMatching,
    /// Theorem 1.2 — vertex cover with self-certifying ratio.
    VertexCover,
}

impl AlgorithmKind {
    /// All kinds, in stable display order.
    pub const ALL: [AlgorithmKind; 11] = [
        AlgorithmKind::GreedyMis,
        AlgorithmKind::CliqueMis,
        AlgorithmKind::LocalMis,
        AlgorithmKind::LubyMis,
        AlgorithmKind::Central,
        AlgorithmKind::MpcMatching,
        AlgorithmKind::Filtering,
        AlgorithmKind::IntegralMatching,
        AlgorithmKind::OnePlusEpsMatching,
        AlgorithmKind::WeightedMatching,
        AlgorithmKind::VertexCover,
    ];

    /// Stable kebab-case name (the CLI and JSON identifier).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::GreedyMis => "greedy-mis",
            AlgorithmKind::CliqueMis => "clique-mis",
            AlgorithmKind::LocalMis => "local-mis",
            AlgorithmKind::LubyMis => "luby-mis",
            AlgorithmKind::Central => "central",
            AlgorithmKind::MpcMatching => "mpc-matching",
            AlgorithmKind::Filtering => "filtering",
            AlgorithmKind::IntegralMatching => "integral-matching",
            AlgorithmKind::OnePlusEpsMatching => "one-plus-eps",
            AlgorithmKind::WeightedMatching => "weighted-matching",
            AlgorithmKind::VertexCover => "vertex-cover",
        }
    }

    /// One-line description shown by `mmvc list`.
    pub fn description(&self) -> &'static str {
        match self {
            AlgorithmKind::GreedyMis => "Theorem 1.1: MIS in O(log log Δ) MPC rounds",
            AlgorithmKind::CliqueMis => "Theorem 1.1: MIS in O(log log Δ) CONGESTED-CLIQUE rounds",
            AlgorithmKind::LocalMis => "Theorem 2.1 substitute: Ghaffari's local MIS process",
            AlgorithmKind::LubyMis => "baseline: Luby's O(log n) MIS [Lub86]",
            AlgorithmKind::Central => "Lemma 4.1: centralized fractional matching/cover",
            AlgorithmKind::MpcMatching => "Lemma 4.2: MPC-Simulation fractional matching/cover",
            AlgorithmKind::Filtering => "§4.4.5: LMSV filtering maximal matching",
            AlgorithmKind::IntegralMatching => "Theorem 1.2: integral (2+ε) matching and cover",
            AlgorithmKind::OnePlusEpsMatching => "Corollary 1.3: (1+ε) matching by augmentation",
            AlgorithmKind::WeightedMatching => "Corollary 1.4: (2+ε) weighted matching",
            AlgorithmKind::VertexCover => "Theorem 1.2: vertex cover with certified ratio",
        }
    }

    /// Parses a CLI/JSON name back into a kind.
    pub fn parse(name: &str) -> Option<AlgorithmKind> {
        AlgorithmKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource limits on a run. `max_rounds` and `max_load_words` are
/// post-hoc checks against the measured substrate quantities (violations
/// are listed in [`RunReport::budget_violations`]); `max_n` is an
/// **admission cap** checked *before* the workload is built — a refused
/// run returns an error instead of a report, which is how callers that
/// serve untrusted specs (the daemon's `POST /run`) keep the
/// million-vertex scale tier from pinning a worker unless it was admitted
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunBudget {
    /// Maximum substrate rounds.
    pub max_rounds: Option<usize>,
    /// Maximum peak per-machine / per-player load, in words.
    pub max_load_words: Option<usize>,
    /// Admission cap on the workload's vertex count (the scenario's
    /// effective `n`, or the loaded graph's `num_vertices` for file
    /// workloads). `None` admits everything, including the scale tier.
    pub max_n: Option<usize>,
}

/// Algorithm-specific configuration overrides — the ablation knobs of the
/// experiment binaries. `Default::default()` is the standard run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOverrides {
    /// Run the coupled `Central-Rand` reference and report deviation
    /// diagnostics ([`MpcMatchingConfig::diagnostics`]).
    pub diagnostics: bool,
    /// Threshold drawing mode (E11 ablation).
    pub threshold_mode: Option<ThresholdMode>,
    /// Machine-count multiplier `m = c·√d` (E12 ablation).
    pub machine_factor: Option<f64>,
    /// Per-machine memory factor (words = factor · n).
    pub space_factor: Option<f64>,
    /// Sublinear-memory regime: per-machine memory shrinks by this factor
    /// (E13; see [`MpcMatchingConfig::sublinear`]).
    pub memory_reduction: Option<f64>,
    /// Weight range for [`AlgorithmKind::WeightedMatching`] instances
    /// (uniform in `[lo, hi]`; see [`weighted_instance`]).
    pub weight_range: (f64, f64),
}

impl Default for RunOverrides {
    fn default() -> Self {
        RunOverrides {
            diagnostics: false,
            threshold_mode: None,
            machine_factor: None,
            space_factor: None,
            memory_reduction: None,
            weight_range: (1.0, 100.0),
        }
    }
}

/// A fully-specified run: which algorithm, on which workload, with which
/// parameters and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The algorithm family to execute.
    pub algorithm: AlgorithmKind,
    /// Scenario registry name ([`mmvc_graph::scenarios`]); empty when
    /// [`graph_file`](Self::graph_file) names the workload instead.
    pub scenario: String,
    /// Path to an edge-list workload file ([`mmvc_graph::io`]). When set,
    /// the driver loads the file instead of consulting the scenario
    /// registry — user-supplied workloads run through the same entry
    /// point as the seeded families.
    pub graph_file: Option<String>,
    /// Vertex-count override (`None` = the scenario's default size).
    pub n: Option<usize>,
    /// Approximation parameter `ε` (ignored by the MIS kinds).
    pub eps: Epsilon,
    /// Seed for both the workload generator and the algorithm.
    pub seed: u64,
    /// Round-engine executor. Never changes reported numbers, only wall
    /// time (the engine's determinism contract).
    pub executor: ExecutorConfig,
    /// Resource limits checked after the run.
    pub budget: RunBudget,
    /// Ablation knobs; default for the standard run.
    pub overrides: RunOverrides,
}

impl RunSpec {
    /// A standard spec: `ε = 0.1`, seed 42, default executor, no budget.
    pub fn new(algorithm: AlgorithmKind, scenario: &str) -> Self {
        RunSpec {
            algorithm,
            scenario: scenario.to_string(),
            graph_file: None,
            n: None,
            eps: Epsilon::new(0.1).expect("0.1 is a valid epsilon"),
            seed: 42,
            executor: ExecutorConfig::default(),
            budget: RunBudget::default(),
            overrides: RunOverrides::default(),
        }
    }

    /// A standard spec whose workload is an edge-list file instead of a
    /// registry scenario (same defaults as [`new`](Self::new)).
    pub fn from_file(algorithm: AlgorithmKind, path: &str) -> Self {
        let mut spec = RunSpec::new(algorithm, "");
        spec.graph_file = Some(path.to_string());
        spec
    }

    /// Builds a spec from untyped `(key, value)` fields — the validation
    /// path behind every external spec source (`mmvc-serve`'s `POST
    /// /run` bodies in particular). Strict: unknown keys, wrong types,
    /// and out-of-domain values are errors, never silently dropped, and
    /// the workload must be named by exactly one of `scenario` /
    /// `graph_file`.
    ///
    /// Accepted keys: `algorithm` (required), `scenario`, `graph_file`,
    /// `n`, `eps`, `seed`, `max_rounds`, `max_load_words`, `max_n`. A
    /// [`SpecValue::Null`] value means "use the default", exactly like
    /// omitting the key.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] describing the offending field.
    pub fn from_fields(fields: &[(String, SpecValue)]) -> Result<RunSpec, CoreError> {
        let algorithm = fields
            .iter()
            .find(|(k, _)| k == "algorithm")
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, SpecValue::Null))
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "algorithm",
                message: "required field is missing".to_string(),
            })?;
        let algorithm = match algorithm {
            SpecValue::Str(name) => {
                AlgorithmKind::parse(name).ok_or_else(|| CoreError::InvalidParameter {
                    name: "algorithm",
                    message: format!(
                        "unknown algorithm `{name}` (one of: {})",
                        AlgorithmKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                })?
            }
            other => {
                return Err(CoreError::InvalidParameter {
                    name: "algorithm",
                    message: format!("expected a string, got {}", other.type_name()),
                })
            }
        };
        let mut spec = RunSpec::new(algorithm, "");
        for (key, value) in fields {
            if key == "algorithm" {
                continue;
            }
            spec.apply_field(key, value)?;
        }
        if spec.scenario.is_empty() && spec.graph_file.is_none() {
            return Err(CoreError::InvalidParameter {
                name: "scenario",
                message: "give a workload: either `scenario` or `graph_file`".to_string(),
            });
        }
        Ok(spec)
    }

    /// Applies one untyped field to the spec (see
    /// [`from_fields`](Self::from_fields) for the accepted keys and
    /// strictness rules). [`SpecValue::Null`] is a no-op.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on unknown keys, type mismatches,
    /// or out-of-domain values.
    pub fn apply_field(&mut self, key: &str, value: &SpecValue) -> Result<(), CoreError> {
        if matches!(value, SpecValue::Null) {
            return Ok(());
        }
        match key {
            "scenario" => {
                self.scenario = value.expect_str("scenario")?.to_string();
                if self.graph_file.is_some() {
                    return Err(both_workloads());
                }
            }
            "graph_file" => {
                self.graph_file = Some(value.expect_str("graph_file")?.to_string());
                if !self.scenario.is_empty() {
                    return Err(both_workloads());
                }
            }
            "n" => self.n = Some(value.expect_usize("n")?),
            "eps" => {
                let raw = value.expect_f64("eps")?;
                self.eps = Epsilon::new(raw)?;
            }
            "seed" => {
                let raw = value.expect_i64("seed")?;
                self.seed = u64::try_from(raw).map_err(|_| CoreError::InvalidParameter {
                    name: "seed",
                    message: format!("must be a non-negative integer, got {raw}"),
                })?;
            }
            "max_rounds" => self.budget.max_rounds = Some(value.expect_usize("max_rounds")?),
            "max_load_words" => {
                self.budget.max_load_words = Some(value.expect_usize("max_load_words")?)
            }
            "max_n" => self.budget.max_n = Some(value.expect_usize("max_n")?),
            other => {
                return Err(CoreError::InvalidParameter {
                    name: "spec",
                    message: format!(
                        "unknown field `{other}` (accepted: algorithm, scenario, graph_file, \
                         n, eps, seed, max_rounds, max_load_words, max_n)"
                    ),
                })
            }
        }
        Ok(())
    }
}

fn both_workloads() -> CoreError {
    CoreError::InvalidParameter {
        name: "graph_file",
        message: "give either `scenario` or `graph_file`, not both".to_string(),
    }
}

/// An untyped spec field value — the bridge between external encodings
/// (JSON request bodies, CLI flags) and [`RunSpec::from_fields`], kept
/// here so spec validation lives with the spec rather than in every
/// front end.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// Explicit "use the default".
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A real number.
    Float(f64),
    /// A string.
    Str(String),
}

impl SpecValue {
    /// The type label used in mismatch error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            SpecValue::Null => "null",
            SpecValue::Bool(_) => "a boolean",
            SpecValue::Int(_) => "an integer",
            SpecValue::Float(_) => "a number",
            SpecValue::Str(_) => "a string",
        }
    }

    fn expect_str(&self, name: &'static str) -> Result<&str, CoreError> {
        match self {
            SpecValue::Str(s) => Ok(s),
            other => Err(type_mismatch(name, "a string", other)),
        }
    }

    fn expect_i64(&self, name: &'static str) -> Result<i64, CoreError> {
        match self {
            SpecValue::Int(v) => Ok(*v),
            other => Err(type_mismatch(name, "an integer", other)),
        }
    }

    fn expect_usize(&self, name: &'static str) -> Result<usize, CoreError> {
        let raw = self.expect_i64(name)?;
        usize::try_from(raw).map_err(|_| CoreError::InvalidParameter {
            name,
            message: format!("must be a non-negative integer, got {raw}"),
        })
    }

    fn expect_f64(&self, name: &'static str) -> Result<f64, CoreError> {
        match self {
            SpecValue::Int(v) => Ok(*v as f64),
            SpecValue::Float(v) => Ok(*v),
            other => Err(type_mismatch(name, "a number", other)),
        }
    }
}

fn type_mismatch(name: &'static str, want: &str, got: &SpecValue) -> CoreError {
    CoreError::InvalidParameter {
        name,
        message: format!("expected {want}, got {}", got.type_name()),
    }
}

/// One algorithm-specific measurement in a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An integral count.
    Int(i64),
    /// A real-valued measurement.
    Float(f64),
    /// A boolean flag.
    Flag(bool),
    /// A free-form label.
    Text(String),
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v}"),
            MetricValue::Flag(v) => write!(f, "{v}"),
            MetricValue::Text(v) => f.write_str(v),
        }
    }
}

/// A validated solution artifact: what the algorithm produced and whether
/// it checked out against the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessStat {
    /// Witness kind: `"mis"`, `"matching"`, `"cover"`.
    pub kind: &'static str,
    /// Cardinality of the witness set.
    pub size: usize,
    /// Whether validation passed (maximality for MIS, edges-in-graph and
    /// maximality where claimed for matchings, coverage for covers).
    pub valid: bool,
}

/// The substrate-derived portion of a report: measured quantities next to
/// the paper's claimed round bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateReport {
    /// Which substrate was measured (`"mpc"`, `"congested-clique"`,
    /// `"local"`, …).
    pub substrate: &'static str,
    /// Measured rounds.
    pub rounds: usize,
    /// Measured peak per-machine / per-player load in words.
    pub max_load_words: usize,
    /// Measured total communication in words.
    pub total_words: usize,
    /// The claimed round bound being tested (e.g. `log₂ log₂ Δ`).
    pub claimed_rounds: f64,
    /// Whether per-machine loads were actually metered. `false` for the
    /// kinds that only count rounds ([`SubstrateReport::from_rounds`]) —
    /// their zero `max_load_words` is "not measured", not "measured
    /// zero", and a load budget against them is an error, not a pass.
    pub metered: bool,
}

impl SubstrateReport {
    /// Measures a live or stored substrate against a claimed round bound.
    pub fn measure(substrate: &dyn Substrate, claimed_rounds: f64) -> Self {
        SubstrateReport {
            substrate: substrate.substrate_name(),
            rounds: substrate.rounds(),
            max_load_words: substrate.max_load_words(),
            total_words: substrate.total_words(),
            claimed_rounds,
            metered: true,
        }
    }

    /// A report for an algorithm that counts rounds without metering
    /// loads (`Central` iterations, pipelined weighted-matching rounds).
    pub fn from_rounds(substrate: &'static str, rounds: usize, claimed_rounds: f64) -> Self {
        SubstrateReport {
            substrate,
            rounds,
            max_load_words: 0,
            total_words: 0,
            claimed_rounds,
            metered: false,
        }
    }

    /// `measured / claimed` — the figure of merit for the paper's round
    /// bounds (`inf` when the claim is zero but rounds were used; 1 when
    /// both are zero).
    pub fn round_ratio(&self) -> f64 {
        if self.claimed_rounds > 0.0 {
            self.rounds as f64 / self.claimed_rounds
        } else if self.rounds == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Everything one run produced: validated witnesses, the measured
/// substrate quantities against the claim, the full per-round trace,
/// algorithm-specific metrics, budget checks, and wall time.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The algorithm that ran.
    pub algorithm: AlgorithmKind,
    /// Workload label (registry name, or the caller's label for
    /// [`run_on`]).
    pub scenario: String,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub num_edges: usize,
    /// Maximum degree of the input graph.
    pub max_degree: usize,
    /// Approximation parameter used.
    pub eps: f64,
    /// Seed used.
    pub seed: u64,
    /// Validated witness statistics.
    pub witnesses: Vec<WitnessStat>,
    /// Claimed-vs-measured round/load quantities.
    pub substrate: SubstrateReport,
    /// The full per-round execution record (empty for unmetered
    /// algorithms).
    pub trace: ExecutionTrace,
    /// Algorithm-specific measurements, in stable emission order.
    pub metrics: Vec<(&'static str, MetricValue)>,
    /// Budget violations (empty when every limit held).
    pub budget_violations: Vec<String>,
    /// Wall-clock time of the algorithm call, in milliseconds. The only
    /// nondeterministic field; zero it before byte-comparing reports.
    pub wall_ms: f64,
}

impl RunReport {
    /// Whether every witness validated.
    pub fn witnesses_valid(&self) -> bool {
        self.witnesses.iter().all(|w| w.valid)
    }

    /// Whether the run succeeded: witnesses valid and budget respected.
    pub fn ok(&self) -> bool {
        self.witnesses_valid() && self.budget_violations.is_empty()
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// A metric as `f64` (integers and flags coerce; text is `None`).
    pub fn metric_f64(&self, name: &str) -> Option<f64> {
        match self.metric(name)? {
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::Float(v) => Some(*v),
            MetricValue::Flag(v) => Some(if *v { 1.0 } else { 0.0 }),
            MetricValue::Text(_) => None,
        }
    }
}

/// The raw algorithm outcome behind a report, for callers that need more
/// than the distilled [`RunReport`] (e.g. re-rounding a fractional
/// matching, or scoring against a reference on the same weighted
/// instance).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RunArtifacts {
    /// From [`AlgorithmKind::GreedyMis`].
    GreedyMis(GreedyMisOutcome),
    /// From [`AlgorithmKind::CliqueMis`].
    CliqueMis(CliqueMisOutcome),
    /// From [`AlgorithmKind::LocalMis`]: the process outcome plus the
    /// finished maximal set.
    LocalMis(LocalMisOutcome, IndependentSet),
    /// From [`AlgorithmKind::LubyMis`].
    LubyMis(crate::baselines::LubyOutcome),
    /// From [`AlgorithmKind::Central`].
    Central(CentralOutcome),
    /// From [`AlgorithmKind::MpcMatching`].
    MpcMatching(MpcMatchingOutcome),
    /// From [`AlgorithmKind::Filtering`].
    Filtering(FilteringOutcome),
    /// From [`AlgorithmKind::IntegralMatching`].
    IntegralMatching(IntegralMatchingOutcome),
    /// From [`AlgorithmKind::OnePlusEpsMatching`].
    OnePlusEps(AugmentOutcome),
    /// From [`AlgorithmKind::WeightedMatching`]: the outcome plus the
    /// weighted instance it ran on.
    WeightedMatching(WeightedMatchingOutcome, WeightedGraph),
    /// From [`AlgorithmKind::VertexCover`].
    VertexCover(VertexCoverOutcome),
}

/// The weighted instance [`run_on`] derives for
/// [`AlgorithmKind::WeightedMatching`]: uniform weights in
/// `spec.overrides.weight_range`, seeded from `spec.seed` (salted so the
/// weight stream is independent of the algorithm's randomness).
///
/// Exposed so experiment binaries can score references (greedy, brute
/// force) on the *same* instance the driver ran.
///
/// # Panics
///
/// Panics if the weight range is invalid (`lo > hi`, non-positive, or
/// non-finite) — a spec construction error, not a runtime condition.
pub fn weighted_instance(g: &Graph, spec: &RunSpec) -> WeightedGraph {
    let (lo, hi) = spec.overrides.weight_range;
    WeightedGraph::with_random_weights(g.clone(), lo, hi, spec.seed ^ WEIGHT_SEED_SALT)
        .expect("weight range must be valid")
}

/// Validates that every matched edge exists in `g`.
pub(crate) fn matching_in_graph(g: &Graph, m: &mmvc_graph::matching::Matching) -> bool {
    m.edges().iter().all(|e| g.has_edge(e.u(), e.v()))
}

/// Resolves `spec.scenario` through the registry and builds the workload.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an unknown scenario name;
/// propagates generator errors for infeasible size overrides.
pub fn build_scenario(spec: &RunSpec) -> Result<Graph, CoreError> {
    let sc = scenarios::get(&spec.scenario).ok_or_else(|| CoreError::InvalidParameter {
        name: "scenario",
        message: format!(
            "unknown scenario `{}` (see `mmvc list` or mmvc_graph::scenarios::names())",
            spec.scenario
        ),
    })?;
    let n = spec.n.unwrap_or(sc.default_n);
    if let Some(cap) = spec.budget.max_n {
        if n > cap {
            return Err(CoreError::InvalidParameter {
                name: "n",
                message: format!(
                    "workload size {n} exceeds the admission cap max_n = {cap} \
                     (scale-tier scenarios must be admitted explicitly)"
                ),
            });
        }
    }
    // The spec's executor drives graph construction too: by the
    // generators' determinism contract it changes build wall time only,
    // never the graph.
    Ok(sc.build_with_exec(n, spec.seed, &spec.executor)?)
}

/// Resolves the spec's workload: the registry scenario, or — when
/// [`RunSpec::graph_file`] is set — the edge-list file, loaded through
/// [`mmvc_graph::io`]. Returns the graph and the label recorded as the
/// report's scenario name (`file:<path>` for file workloads).
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an unknown scenario or when both
/// workload kinds are named; [`CoreError::GraphFile`] when the file
/// cannot be opened or parsed.
pub fn build_workload(spec: &RunSpec) -> Result<(Graph, String), CoreError> {
    match &spec.graph_file {
        Some(path) => {
            if !spec.scenario.is_empty() {
                return Err(both_workloads());
            }
            if spec.n.is_some() {
                return Err(CoreError::InvalidParameter {
                    name: "n",
                    message: "a size override does not apply to a graph file workload".to_string(),
                });
            }
            let graph_file_err = |source| CoreError::GraphFile {
                path: path.clone(),
                source,
            };
            let file = std::fs::File::open(path)
                .map_err(|e| graph_file_err(mmvc_graph::io::ReadError::Io(e)))?;
            // The admission cap applies before the CSR arrays are
            // allocated — a tiny file declaring a huge vertex count must
            // be refused by arithmetic, not by OOM.
            let g = mmvc_graph::io::read_edge_list_capped(
                std::io::BufReader::new(file),
                spec.budget.max_n,
            )
            .map_err(graph_file_err)?;
            Ok((g, format!("file:{path}")))
        }
        None => Ok((build_scenario(spec)?, spec.scenario.clone())),
    }
}

/// Runs a spec end to end: resolve the workload (registry scenario or
/// edge-list file), execute, validate.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an unknown scenario,
/// [`CoreError::GraphFile`] for an unloadable graph file; otherwise
/// whatever the algorithm itself reports (typically substrate budget
/// violations under misconfigured space factors).
pub fn run(spec: &RunSpec) -> Result<RunReport, CoreError> {
    // One scratch arena per run, installed before the build so the
    // generator, the CSR builder, and every per-round algorithm scan
    // draw from (and recycle into) the same pool.
    let spec = spec_with_scratch(spec);
    let (g, label) = {
        let _span = spec.executor.telemetry().span("build");
        build_workload(&spec)?
    };
    run_on(&g, &label, &spec)
}

/// A copy of `spec` whose executor is guaranteed to carry a scratch
/// arena (idempotent when the caller already attached one).
fn spec_with_scratch(spec: &RunSpec) -> RunSpec {
    let mut s = spec.clone();
    s.executor = s.executor.clone().ensure_scratch();
    s
}

/// Like [`run`], but on a caller-supplied graph (for ad-hoc parameter
/// sweeps); `label` is recorded as the report's scenario name.
///
/// # Errors
///
/// Propagates the algorithm's [`CoreError`].
pub fn run_on(g: &Graph, label: &str, spec: &RunSpec) -> Result<RunReport, CoreError> {
    run_detailed(g, label, spec).map(|(report, _)| report)
}

/// Like [`run_on`], but also returns the raw algorithm outcome.
///
/// # Errors
///
/// Propagates the algorithm's [`CoreError`].
pub fn run_detailed(
    g: &Graph,
    label: &str,
    spec: &RunSpec,
) -> Result<(RunReport, RunArtifacts), CoreError> {
    // Backstop for direct callers: make sure the executor carries a
    // scratch arena (no-op when `run` already installed one).
    let spec = &spec_with_scratch(spec);
    // The admission cap guards every entry point, including file
    // workloads and caller-supplied graphs (the registry path already
    // refused before building — this is the backstop).
    if let Some(cap) = spec.budget.max_n {
        if g.num_vertices() > cap {
            return Err(CoreError::InvalidParameter {
                name: "n",
                message: format!(
                    "workload has {} vertices, exceeding the admission cap max_n = {cap}",
                    g.num_vertices()
                ),
            });
        }
    }
    let start = std::time::Instant::now();
    let (witnesses, substrate, trace, mut metrics, artifacts) = {
        let _span = spec
            .executor
            .telemetry()
            .span_tagged("algorithm", spec.algorithm.name())
            .with_arg("n", g.num_vertices() as u64)
            .with_arg("edges", g.num_edges() as u64);
        dispatch(g, spec)?
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    // Scratch-arena counters are scheduling-dependent (which thread
    // reuses which shelf), so — like wall_ms — they may never enter the
    // canonical report surface. Diagnostics mode opts in explicitly;
    // it is not expressible through `POST /run`, so cached bodies stay
    // pure functions of the spec.
    if spec.overrides.diagnostics {
        if let Some(pool) = spec.executor.scratch() {
            let s = pool.stats();
            metrics.push((
                "scratch_allocations",
                MetricValue::Int(s.allocations as i64),
            ));
            metrics.push((
                "scratch_allocated_bytes",
                MetricValue::Int(s.allocated_bytes as i64),
            ));
            metrics.push(("scratch_reuses", MetricValue::Int(s.reuses as i64)));
            metrics.push((
                "scratch_reused_bytes",
                MetricValue::Int(s.reused_bytes as i64),
            ));
        }
    }

    let mut budget_violations = Vec::new();
    if let Some(max) = spec.budget.max_rounds {
        if substrate.rounds > max {
            budget_violations.push(format!("rounds {} exceed budget {max}", substrate.rounds));
        }
    }
    if let Some(max) = spec.budget.max_load_words {
        if !substrate.metered {
            budget_violations.push(format!(
                "load budget {max} set, but {} does not meter per-machine load",
                spec.algorithm.name()
            ));
        } else if substrate.max_load_words > max {
            budget_violations.push(format!(
                "max load {} words exceeds budget {max}",
                substrate.max_load_words
            ));
        }
    }

    let report = RunReport {
        algorithm: spec.algorithm,
        scenario: label.to_string(),
        n: g.num_vertices(),
        num_edges: g.num_edges(),
        max_degree: g.max_degree(),
        eps: spec.eps.get(),
        seed: spec.seed,
        witnesses,
        substrate,
        trace,
        metrics,
        budget_violations,
        wall_ms,
    };
    Ok((report, artifacts))
}

type DispatchOut = (
    Vec<WitnessStat>,
    SubstrateReport,
    ExecutionTrace,
    Vec<(&'static str, MetricValue)>,
    RunArtifacts,
);

/// Builds the `MPC-Simulation` config a spec describes (shared by the
/// matching, integral, and cover kinds).
fn sim_config(spec: &RunSpec) -> MpcMatchingConfig {
    let o = &spec.overrides;
    let mut cfg = match o.memory_reduction {
        Some(r) => MpcMatchingConfig::sublinear(spec.eps, spec.seed, r),
        None => MpcMatchingConfig::new(spec.eps, spec.seed),
    };
    cfg.executor = spec.executor.clone();
    cfg.diagnostics = o.diagnostics;
    if let Some(mode) = o.threshold_mode {
        cfg.threshold_mode = mode;
    }
    if let Some(c) = o.machine_factor {
        cfg.machine_factor = c;
    }
    if let Some(s) = o.space_factor {
        cfg.space_factor = s;
    }
    cfg
}

/// Appends the diagnostics metrics shared by the `MPC-Simulation` kinds.
fn push_sim_metrics(
    metrics: &mut Vec<(&'static str, MetricValue)>,
    out: &MpcMatchingOutcome,
    g: &Graph,
) {
    metrics.push(("phases", MetricValue::Int(out.phases as i64)));
    metrics.push(("iterations", MetricValue::Int(out.iterations as i64)));
    metrics.push((
        "tail_iterations",
        MetricValue::Int(out.tail_iterations as i64),
    ));
    let removed = out.removed.iter().filter(|&&r| r).count();
    metrics.push(("removed", MetricValue::Int(removed as i64)));
    metrics.push(("frac_weight", MetricValue::Float(out.fractional.weight())));
    metrics.push((
        "frac_feasible",
        MetricValue::Flag(out.fractional.is_feasible(g)),
    ));
    metrics.push((
        "heavy_certificate",
        MetricValue::Int(out.heavy_certificate.len() as i64),
    ));
    if let Some(diag) = &out.diagnostics {
        metrics.push(("bad_fraction", MetricValue::Float(diag.bad_fraction())));
        metrics.push((
            "max_estimate_error",
            MetricValue::Float(diag.max_estimate_error),
        ));
        metrics.push((
            "compared_vertices",
            MetricValue::Int(diag.compared_vertices as i64),
        ));
    }
}

fn dispatch(g: &Graph, spec: &RunSpec) -> Result<DispatchOut, CoreError> {
    let n = g.num_vertices();
    let maxdeg = g.max_degree();
    match spec.algorithm {
        AlgorithmKind::GreedyMis => {
            let mut cfg = GreedyMisConfig::new(spec.seed);
            cfg.executor = spec.executor.clone();
            if let Some(s) = spec.overrides.space_factor {
                cfg.space_factor = s;
            }
            let out = greedy_mpc_mis(g, &cfg)?;
            let witness = WitnessStat {
                kind: "mis",
                size: out.mis.len(),
                valid: out.mis.is_maximal(g),
            };
            let mut substrate = SubstrateReport::measure(&out.trace, log_log2(maxdeg.max(4)));
            substrate.substrate = "mpc";
            let metrics = vec![
                ("prefix_phases", MetricValue::Int(out.prefix_phases as i64)),
                ("local_rounds", MetricValue::Int(out.local_rounds as i64)),
                (
                    "max_phase_words",
                    MetricValue::Int(out.phase_edge_words.iter().copied().max().unwrap_or(0) as i64),
                ),
            ];
            let trace = out.trace.clone();
            Ok((
                vec![witness],
                substrate,
                trace,
                metrics,
                RunArtifacts::GreedyMis(out),
            ))
        }
        AlgorithmKind::CliqueMis => {
            let mut cfg = CliqueMisConfig::new(spec.seed);
            cfg.executor = spec.executor.clone();
            let out = clique_mis(g, &cfg)?;
            let witness = WitnessStat {
                kind: "mis",
                size: out.mis.len(),
                valid: out.mis.is_maximal(g),
            };
            let mut substrate = SubstrateReport::measure(&out.trace, log_log2(maxdeg.max(4)));
            substrate.substrate = "congested-clique";
            let metrics = vec![
                ("prefix_phases", MetricValue::Int(out.prefix_phases as i64)),
                ("local_rounds", MetricValue::Int(out.local_rounds as i64)),
            ];
            let trace = out.trace.clone();
            Ok((
                vec![witness],
                substrate,
                trace,
                metrics,
                RunArtifacts::CliqueMis(out),
            ))
        }
        AlgorithmKind::LocalMis => {
            // The paper uses the local process on already-sparsified
            // graphs; as a standalone run we drive it on the whole graph
            // and finish the residue greedily (the "gather onto one
            // machine" step, one extra round).
            let active = vec![true; n];
            let log2n = (n.max(2) as f64).log2();
            let cfg = LocalMisConfig {
                seed: spec.seed,
                max_rounds: (4.0 * log2n).ceil() as usize,
                target_edges: n.max(8),
            };
            let out = ghaffari_local_mis(g, &active, &cfg);
            let mut in_mis = out.in_mis.clone();
            let mut blocked: Vec<bool> = out
                .decided
                .iter()
                .zip(&in_mis)
                .map(|(&d, &m)| d && !m)
                .collect();
            for v in 0..n as u32 {
                if !in_mis[v as usize] && !blocked[v as usize] {
                    in_mis[v as usize] = true;
                    for &u in g.neighbors(v) {
                        blocked[u as usize] = true;
                    }
                }
            }
            let members = (0..n as u32).filter(|&v| in_mis[v as usize]);
            let (size, valid, mis) = match IndependentSet::new(g, members) {
                Some(s) => {
                    let v = s.is_maximal(g);
                    (s.len(), v, s)
                }
                None => (0, false, IndependentSet::empty(n)),
            };
            let witness = WitnessStat {
                kind: "mis",
                size,
                valid,
            };
            // One exchange per process round plus the residual gather.
            let rounds = out.rounds + 1;
            let substrate =
                SubstrateReport::from_rounds("local", rounds, (maxdeg.max(2) as f64).log2());
            let metrics = vec![
                ("process_rounds", MetricValue::Int(out.rounds as i64)),
                (
                    "residual_edges",
                    MetricValue::Int(out.residual_edges as i64),
                ),
            ];
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::LocalMis(out, mis),
            ))
        }
        AlgorithmKind::LubyMis => {
            let out = luby_mis(g, spec.seed);
            let witness = WitnessStat {
                kind: "mis",
                size: out.mis.len(),
                valid: out.mis.is_maximal(g),
            };
            let substrate =
                SubstrateReport::from_rounds("luby", out.rounds, (n.max(2) as f64).log2());
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                Vec::new(),
                RunArtifacts::LubyMis(out),
            ))
        }
        AlgorithmKind::Central => {
            let cfg = match spec.overrides.threshold_mode {
                Some(ThresholdMode::Fixed) => CentralConfig::fixed(spec.eps),
                _ => CentralConfig::random(spec.eps, spec.seed),
            };
            let out = run_central(g, &cfg);
            let witness = WitnessStat {
                kind: "cover",
                size: out.cover.len(),
                valid: out.cover.covers(g),
            };
            // Lemma 4.1: O(log n / ε) iterations — the explicit bound is
            // ln(n) / ln(1/(1−ε)).
            let claimed = ((n.max(2) as f64).ln() / (1.0 / (1.0 - spec.eps.get())).ln()).ceil();
            let substrate = SubstrateReport::from_rounds("central", out.iterations, claimed);
            let metrics = vec![
                ("frac_weight", MetricValue::Float(out.fractional.weight())),
                (
                    "frac_feasible",
                    MetricValue::Flag(out.fractional.is_feasible(g)),
                ),
            ];
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::Central(out),
            ))
        }
        AlgorithmKind::MpcMatching => {
            let cfg = sim_config(spec);
            let out = mpc_simulation(g, &cfg)?;
            let witness = WitnessStat {
                kind: "cover",
                size: out.cover.len(),
                valid: out.cover.covers(g),
            };
            let mut substrate = SubstrateReport::measure(&out.trace, log_log2(n));
            substrate.substrate = "mpc";
            let mut metrics = Vec::new();
            push_sim_metrics(&mut metrics, &out, g);
            let trace = out.trace.clone();
            Ok((
                vec![witness],
                substrate,
                trace,
                metrics,
                RunArtifacts::MpcMatching(out),
            ))
        }
        AlgorithmKind::Filtering => {
            let mut cfg = FilteringConfig::new(spec.seed);
            cfg.executor = spec.executor.clone();
            if let Some(s) = spec.overrides.space_factor {
                cfg.space_factor = s;
            }
            let out = filtering_maximal_matching(g, &cfg)?;
            let witness = WitnessStat {
                kind: "matching",
                size: out.matching.len(),
                valid: matching_in_graph(g, &out.matching) && out.matching.is_maximal(g),
            };
            // LMSV Lemma 3.2: edges halve per filtering round w.h.p.
            let mut substrate = SubstrateReport::measure(&out.trace, (n.max(2) as f64).log2());
            substrate.substrate = "mpc";
            let metrics = vec![("filter_rounds", MetricValue::Int(out.filter_rounds as i64))];
            let trace = out.trace.clone();
            Ok((
                vec![witness],
                substrate,
                trace,
                metrics,
                RunArtifacts::Filtering(out),
            ))
        }
        AlgorithmKind::IntegralMatching => {
            let cfg = IntegralMatchingConfig {
                sim: sim_config(spec),
                max_extractions: None,
            };
            let out = integral_matching(g, &cfg)?;
            let witnesses = vec![
                WitnessStat {
                    kind: "matching",
                    size: out.matching.len(),
                    valid: matching_in_graph(g, &out.matching),
                },
                WitnessStat {
                    kind: "cover",
                    size: out.cover.len(),
                    valid: out.cover.covers(g),
                },
            ];
            let substrate = SubstrateReport::from_rounds("mpc", out.total_rounds, log_log2(n));
            let metrics = vec![
                ("extractions", MetricValue::Int(out.extractions as i64)),
                ("used_fallback", MetricValue::Flag(out.used_fallback)),
            ];
            Ok((
                witnesses,
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::IntegralMatching(out),
            ))
        }
        AlgorithmKind::OnePlusEpsMatching => {
            let cfg = AugmentConfig::new(spec.eps, spec.seed);
            let out = one_plus_eps_matching(g, &cfg)?;
            let witness = WitnessStat {
                kind: "matching",
                size: out.matching.len(),
                valid: matching_in_graph(g, &out.matching) && out.matching.is_maximal(g),
            };
            // Corollary 1.3: O(log log n)·(1/ε)^O(1/ε) rounds; the
            // practical reference curve keeps the leading factors only.
            let claimed = log_log2(n) / spec.eps.get();
            let rounds = out.initial_rounds + out.passes;
            let substrate = SubstrateReport::from_rounds("mpc", rounds, claimed);
            let metrics = vec![
                ("passes", MetricValue::Int(out.passes as i64)),
                ("augmentations", MetricValue::Int(out.augmentations as i64)),
                ("path_limit", MetricValue::Int(out.path_limit as i64)),
                (
                    "initial_rounds",
                    MetricValue::Int(out.initial_rounds as i64),
                ),
            ];
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::OnePlusEps(out),
            ))
        }
        AlgorithmKind::WeightedMatching => {
            let wg = weighted_instance(g, spec);
            let cfg = WeightedMatchingConfig::new(spec.eps, spec.seed);
            let out = crate::matching::weighted_matching(&wg, &cfg)?;
            let witness = WitnessStat {
                kind: "matching",
                size: out.matching.len(),
                valid: matching_in_graph(g, &out.matching),
            };
            // Corollary 1.4 pipelines one O(log log n) subroutine per
            // non-empty weight class.
            let claimed = (out.classes.max(1) as f64) * log_log2(n);
            let substrate = SubstrateReport::from_rounds("mpc", out.total_rounds, claimed);
            let metrics = vec![
                ("classes", MetricValue::Int(out.classes as i64)),
                ("total_weight", MetricValue::Float(out.total_weight)),
            ];
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::WeightedMatching(out, wg),
            ))
        }
        AlgorithmKind::VertexCover => {
            let cfg = VertexCoverConfig {
                sim: sim_config(spec),
            };
            let out = approx_min_vertex_cover(g, &cfg)?;
            let witness = WitnessStat {
                kind: "cover",
                size: out.cover.len(),
                valid: out.cover.covers(g),
            };
            let substrate = SubstrateReport::from_rounds("mpc", out.total_rounds, log_log2(n));
            let metrics = vec![
                (
                    "matching_lower_bound",
                    MetricValue::Int(out.matching_lower_bound as i64),
                ),
                ("certified_ratio", MetricValue::Float(out.certified_ratio)),
            ];
            Ok((
                vec![witness],
                substrate,
                ExecutionTrace::new(),
                metrics,
                RunArtifacts::VertexCover(out),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(kind: AlgorithmKind) -> RunSpec {
        let mut spec = RunSpec::new(kind, "gnp-sparse");
        spec.n = Some(128);
        spec.seed = 7;
        spec
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(kind.name()), Some(kind));
            assert!(!kind.description().is_empty());
        }
        assert_eq!(AlgorithmKind::parse("nope"), None);
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let spec = RunSpec::new(AlgorithmKind::GreedyMis, "no-such-scenario");
        let err = run(&spec).unwrap_err();
        assert!(err.to_string().contains("unknown scenario"));
    }

    #[test]
    fn greedy_mis_run_reports_witness_and_trace() {
        let report = run(&small_spec(AlgorithmKind::GreedyMis)).unwrap();
        assert!(report.ok());
        assert_eq!(report.n, 128);
        assert_eq!(report.witnesses.len(), 1);
        assert_eq!(report.witnesses[0].kind, "mis");
        assert!(report.witnesses[0].valid);
        assert_eq!(report.substrate.rounds, report.trace.rounds());
        assert!(report.metric("prefix_phases").is_some());
        assert!(report.wall_ms >= 0.0);
    }

    #[test]
    fn budget_violations_are_reported_not_fatal() {
        let mut spec = small_spec(AlgorithmKind::GreedyMis);
        spec.budget.max_rounds = Some(1);
        spec.budget.max_load_words = Some(1);
        let report = run(&spec).unwrap();
        assert!(!report.ok());
        assert_eq!(report.budget_violations.len(), 2);
        assert!(report.witnesses_valid());
    }

    #[test]
    fn load_budget_on_unmetered_kind_is_a_violation_not_a_pass() {
        // Central only counts iterations; a load budget against it must
        // surface as a violation, never silently pass on the zero field.
        let mut spec = small_spec(AlgorithmKind::Central);
        spec.budget.max_load_words = Some(1_000_000);
        let report = run(&spec).unwrap();
        assert!(!report.substrate.metered);
        assert!(!report.ok());
        assert_eq!(report.budget_violations.len(), 1);
        assert!(
            report.budget_violations[0].contains("does not meter"),
            "got: {}",
            report.budget_violations[0]
        );
    }

    #[test]
    fn weighted_instance_is_stable_and_salted() {
        let spec = small_spec(AlgorithmKind::WeightedMatching);
        let g = build_scenario(&spec).unwrap();
        let a = weighted_instance(&g, &spec);
        let b = weighted_instance(&g, &spec);
        assert_eq!(a.weights(), b.weights());
        let (report, artifacts) = run_detailed(&g, "gnp-sparse", &spec).unwrap();
        assert!(report.ok());
        match artifacts {
            RunArtifacts::WeightedMatching(out, wg) => {
                assert_eq!(wg.weights(), a.weights());
                assert!(
                    (out.total_weight - report.metric_f64("total_weight").unwrap()).abs() < 1e-12
                );
            }
            other => panic!("wrong artifacts: {other:?}"),
        }
    }

    #[test]
    fn substrate_report_ratio_edges() {
        let r = SubstrateReport::from_rounds("x", 0, 0.0);
        assert_eq!(r.round_ratio(), 1.0);
        let r = SubstrateReport::from_rounds("x", 3, 0.0);
        assert_eq!(r.round_ratio(), f64::INFINITY);
        let r = SubstrateReport::from_rounds("x", 3, 6.0);
        assert!((r.round_ratio() - 0.5).abs() < 1e-12);
    }

    fn fields(pairs: &[(&str, SpecValue)]) -> Vec<(String, SpecValue)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn spec_from_fields_happy_path() {
        let spec = RunSpec::from_fields(&fields(&[
            ("algorithm", SpecValue::Str("greedy-mis".into())),
            ("scenario", SpecValue::Str("gnp-sparse".into())),
            ("n", SpecValue::Int(128)),
            ("eps", SpecValue::Float(0.05)),
            ("seed", SpecValue::Int(7)),
            ("max_rounds", SpecValue::Int(50)),
            ("max_load_words", SpecValue::Null),
        ]))
        .unwrap();
        assert_eq!(spec.algorithm, AlgorithmKind::GreedyMis);
        assert_eq!(spec.scenario, "gnp-sparse");
        assert_eq!(spec.n, Some(128));
        assert!((spec.eps.get() - 0.05).abs() < 1e-12);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.budget.max_rounds, Some(50));
        assert_eq!(spec.budget.max_load_words, None);
        assert!(run(&spec).unwrap().ok());
    }

    #[test]
    fn spec_from_fields_rejects_bad_input() {
        let cases: Vec<(Vec<(String, SpecValue)>, &str)> = vec![
            (fields(&[]), "algorithm"),
            (
                fields(&[("algorithm", SpecValue::Str("nope".into()))]),
                "unknown algorithm",
            ),
            (
                fields(&[("algorithm", SpecValue::Int(3))]),
                "expected a string",
            ),
            (
                fields(&[("algorithm", SpecValue::Str("central".into()))]),
                "give a workload",
            ),
            (
                fields(&[
                    ("algorithm", SpecValue::Str("central".into())),
                    ("scenario", SpecValue::Str("gnp-sparse".into())),
                    ("graph_file", SpecValue::Str("g.txt".into())),
                ]),
                "not both",
            ),
            (
                fields(&[
                    ("algorithm", SpecValue::Str("central".into())),
                    ("scenario", SpecValue::Str("gnp-sparse".into())),
                    ("frobnicate", SpecValue::Int(1)),
                ]),
                "unknown field `frobnicate`",
            ),
            (
                fields(&[
                    ("algorithm", SpecValue::Str("central".into())),
                    ("scenario", SpecValue::Str("gnp-sparse".into())),
                    ("n", SpecValue::Int(-5)),
                ]),
                "non-negative",
            ),
            (
                fields(&[
                    ("algorithm", SpecValue::Str("central".into())),
                    ("scenario", SpecValue::Str("gnp-sparse".into())),
                    ("seed", SpecValue::Str("abc".into())),
                ]),
                "expected an integer",
            ),
            (
                fields(&[
                    ("algorithm", SpecValue::Str("central".into())),
                    ("scenario", SpecValue::Str("gnp-sparse".into())),
                    ("eps", SpecValue::Float(0.9)),
                ]),
                "epsilon",
            ),
        ];
        for (input, expect) in cases {
            let err = RunSpec::from_fields(&input).unwrap_err().to_string();
            assert!(err.contains(expect), "`{err}` should mention `{expect}`");
        }
    }

    #[test]
    fn graph_file_workload_runs_and_errors_cleanly() {
        let dir = std::env::temp_dir();
        let path = dir.join("mmvc_run_graph_file_test.txt");
        let path_str = path.to_str().unwrap();
        let g = mmvc_graph::generators::gnp(64, 0.1, 3).unwrap();
        let mut buf = Vec::new();
        mmvc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let spec = RunSpec::from_file(AlgorithmKind::GreedyMis, path_str);
        let report = run(&spec).unwrap();
        assert!(report.ok());
        assert_eq!(report.n, 64);
        assert_eq!(report.scenario, format!("file:{path_str}"));

        // Identical to running on the same graph directly.
        let direct = run_on(&g, &format!("file:{path_str}"), &spec).unwrap();
        assert_eq!(report.witnesses, direct.witnesses);
        assert_eq!(report.substrate, direct.substrate);

        let mut bad = spec.clone();
        bad.n = Some(10);
        assert!(run(&bad).unwrap_err().to_string().contains("size override"));

        let missing = RunSpec::from_file(AlgorithmKind::GreedyMis, "/no/such/file.txt");
        let err = run(&missing).unwrap_err();
        assert!(matches!(err, CoreError::GraphFile { .. }), "{err}");
        assert!(err.to_string().contains("/no/such/file.txt"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_log_values() {
        assert!((log_log2(16) - 2.0).abs() < 1e-12);
        assert!((log_log2(65536) - 4.0).abs() < 1e-12);
        assert!(log_log2(0) > 0.0, "clamped to n=4");
    }
}
