//! The `Central` and `Central-Rand` algorithms (paper, Sections 4.1 and
//! 4.3): the `O(log n)`-iteration sequential process that produces a
//! `(2+5ε)`-approximate fractional maximum matching and integral minimum
//! vertex cover (Lemma 4.1).
//!
//! Both variants share one engine differing only in the freezing threshold:
//!
//! * `Central` — fixed threshold `1 − 2ε`;
//! * `Central-Rand` — per-vertex, per-iteration threshold
//!   `T(v,t) ~ U[1−4ε, 1−2ε]`, drawn statelessly from a seed so that the
//!   distributed simulation can observe the *same* thresholds (Section
//!   4.4.3).

use crate::epsilon::Epsilon;
use crate::matching::fractional::FractionalMatching;
use mmvc_graph::rng::hash3_unit;
use mmvc_graph::vertex_cover::VertexCover;
use mmvc_graph::{Graph, VertexId};

/// Sentinel freeze iteration for "never frozen" (isolated vertices).
pub const NEVER_FROZEN: u32 = u32::MAX;

/// How freezing thresholds are chosen per vertex and iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdRule {
    /// The deterministic threshold `1 − 2ε` of `Central` (Section 4.1).
    Fixed,
    /// The randomized thresholds `T(v,t) ~ U[1−4ε, 1−2ε]` of
    /// `Central-Rand` (Section 4.3), derived statelessly from the seed.
    Random {
        /// Seed from which all thresholds are derived.
        seed: u64,
    },
}

impl ThresholdRule {
    /// The threshold for vertex `v` at iteration `t`.
    pub fn threshold(&self, eps: Epsilon, v: VertexId, t: u32) -> f64 {
        let e = eps.get();
        match self {
            ThresholdRule::Fixed => 1.0 - 2.0 * e,
            ThresholdRule::Random { seed } => {
                // Uniform in [1-4ε, 1-2ε].
                1.0 - 4.0 * e + 2.0 * e * hash3_unit(*seed, v as u64, t as u64)
            }
        }
    }

    /// The smallest threshold this rule can produce — below it no vertex
    /// can freeze, which is what makes iterations fast-forwardable.
    pub fn min_threshold(&self, eps: Epsilon) -> f64 {
        match self {
            ThresholdRule::Fixed => 1.0 - 2.0 * eps.get(),
            ThresholdRule::Random { .. } => 1.0 - 4.0 * eps.get(),
        }
    }
}

/// Configuration of the centralized algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralConfig {
    /// Approximation parameter.
    pub eps: Epsilon,
    /// Threshold rule (fixed = `Central`, random = `Central-Rand`).
    pub thresholds: ThresholdRule,
    /// Initial edge weight `w₀`; defaults to `1/n` (Section 4.1). The MPC
    /// simulation couples against a run with `w₀ = (1−2ε)/n` (Section 4.3).
    pub initial_weight: Option<f64>,
}

impl CentralConfig {
    /// `Central` with threshold `1 − 2ε` and `w₀ = 1/n`.
    pub fn fixed(eps: Epsilon) -> Self {
        CentralConfig {
            eps,
            thresholds: ThresholdRule::Fixed,
            initial_weight: None,
        }
    }

    /// `Central-Rand` with `T(v,t) ~ U[1−4ε, 1−2ε]` and `w₀ = 1/n`.
    pub fn random(eps: Epsilon, seed: u64) -> Self {
        CentralConfig {
            eps,
            thresholds: ThresholdRule::Random { seed },
            initial_weight: None,
        }
    }
}

/// Output of the centralized algorithm.
#[derive(Debug, Clone)]
pub struct CentralOutcome {
    /// The fractional matching `x` (Lemma 4.1(B): weight within `(2+5ε)`
    /// of the maximum matching).
    pub fractional: FractionalMatching,
    /// The vertex cover of frozen vertices (Lemma 4.1(A): within `(2+5ε)`
    /// of the minimum vertex cover).
    pub cover: VertexCover,
    /// Iterations executed until every edge was frozen.
    pub iterations: usize,
    /// Per-vertex freeze iteration ([`NEVER_FROZEN`] for vertices that
    /// never froze, i.e. isolated ones). Iteration `t` means the vertex
    /// froze during iteration `t`, with its edges at weight `w₀/(1−ε)^t`.
    pub freeze_iteration: Vec<u32>,
}

/// Runs the centralized fractional-matching / vertex-cover algorithm
/// (paper, Sections 4.1 / 4.3) to completion.
///
/// Iterates "(A) freeze vertices whose load reached their threshold, then
/// (B) multiply active edge weights by `1/(1−ε)`" until every edge is
/// frozen, which takes `O(log n / ε)` iterations (Lemma 4.1).
///
/// # Panics
///
/// Panics if `config.initial_weight` is non-positive or not finite.
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::{run_central, CentralConfig};
/// use mmvc_core::Epsilon;
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(100, 0.1, 1)?;
/// let out = run_central(&g, &CentralConfig::fixed(Epsilon::new(0.1)?));
/// assert!(out.cover.covers(&g));
/// assert!(out.fractional.is_feasible(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_central(g: &Graph, config: &CentralConfig) -> CentralOutcome {
    let n = g.num_vertices();
    let m = g.num_edges();
    let eps = config.eps;
    let w0 = config.initial_weight.unwrap_or(1.0 / n.max(1) as f64);
    assert!(
        w0.is_finite() && w0 > 0.0,
        "initial weight must be positive, got {w0}"
    );

    let mut freeze_iteration = vec![NEVER_FROZEN; n];
    if m == 0 {
        return CentralOutcome {
            fractional: FractionalMatching::zero(g),
            cover: VertexCover::from_mask_unchecked(vec![false; n]),
            iterations: 0,
            freeze_iteration,
        };
    }

    let growth = eps.growth_factor();
    let mut x: Vec<f64> = vec![w0; m];
    let mut frozen = vec![false; n];
    let mut active_edges = m;
    // Safety cap: weights reach 1 within this many iterations, after which
    // every edge must freeze; the +2 covers boundary iterations.
    let cap = eps.iterations_to_grow(w0, 1.0) + 2;

    let mut t: u32 = 0;
    let mut iterations = 0usize;
    while active_edges > 0 && iterations < cap {
        // y_v over all incident edges (frozen edges keep contributing their
        // final weight, exactly as in the paper).
        let mut y = vec![0.0f64; n];
        for (i, e) in g.edges().iter().enumerate() {
            y[e.u() as usize] += x[i];
            y[e.v() as usize] += x[i];
        }
        // (A) freeze vertices whose load reached their threshold.
        for v in 0..n {
            if !frozen[v] && y[v] >= config.thresholds.threshold(eps, v as u32, t) {
                frozen[v] = true;
                freeze_iteration[v] = t;
            }
        }
        // (B) grow the weight of edges that remain active.
        active_edges = 0;
        for (i, e) in g.edges().iter().enumerate() {
            if !frozen[e.u() as usize] && !frozen[e.v() as usize] {
                x[i] *= growth;
                active_edges += 1;
            }
        }
        t += 1;
        iterations += 1;
    }
    debug_assert_eq!(
        active_edges, 0,
        "Central must terminate with all edges frozen"
    );

    let fractional =
        FractionalMatching::new(g, x).expect("Central maintains y_v <= 1 by construction");
    let cover = VertexCover::from_mask_unchecked(frozen);
    CentralOutcome {
        fractional,
        cover,
        iterations,
        freeze_iteration,
    }
}

/// Convenience wrapper: `Central` (fixed thresholds).
pub fn central(g: &Graph, eps: Epsilon) -> CentralOutcome {
    run_central(g, &CentralConfig::fixed(eps))
}

/// Convenience wrapper: `Central-Rand` (random thresholds).
pub fn central_rand(g: &Graph, eps: Epsilon, seed: u64) -> CentralOutcome {
    run_central(g, &CentralConfig::random(eps, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::{generators, matching};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn thresholds_in_range() {
        let e = eps(0.1);
        assert_eq!(ThresholdRule::Fixed.threshold(e, 0, 0), 0.8);
        let rule = ThresholdRule::Random { seed: 3 };
        for v in 0..50u32 {
            for t in 0..20u32 {
                let th = rule.threshold(e, v, t);
                assert!((0.6..=0.8).contains(&th), "T({v},{t}) = {th}");
            }
        }
    }

    #[test]
    fn random_thresholds_vary_per_vertex_and_iteration() {
        let e = eps(0.1);
        let rule = ThresholdRule::Random { seed: 9 };
        assert_ne!(rule.threshold(e, 0, 0), rule.threshold(e, 1, 0));
        assert_ne!(rule.threshold(e, 0, 0), rule.threshold(e, 0, 1));
        // Same inputs -> same threshold (stateless determinism).
        assert_eq!(rule.threshold(e, 5, 7), rule.threshold(e, 5, 7));
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::empty(5);
        let out = central(&g, eps(0.1));
        assert_eq!(out.iterations, 0);
        assert_eq!(out.cover.len(), 0);
        assert_eq!(out.fractional.weight(), 0.0);
        assert!(out.freeze_iteration.iter().all(|&f| f == NEVER_FROZEN));
    }

    #[test]
    fn single_edge_freezes_both_endpoints() {
        let g = generators::path(2);
        let out = central(&g, eps(0.1));
        assert!(out.cover.covers(&g));
        assert!(out.iterations > 0);
        // Both endpoints see the same load, so they freeze together.
        assert_eq!(out.freeze_iteration[0], out.freeze_iteration[1]);
        // Weight of the single edge is close to (but below) 1.
        let w = out.fractional.edge_weight(0);
        assert!(w >= 1.0 - 2.0 * 0.1 - 1e-9, "w = {w}");
        assert!(w <= 1.0);
    }

    #[test]
    fn iteration_count_logarithmic() {
        let e = eps(0.1);
        for n in [100usize, 1000, 10000] {
            let g = generators::disjoint_edges(n / 2);
            let out = central(&g, e);
            let bound = e.iterations_to_grow(1.0 / n as f64, 1.0) + 2;
            assert!(
                out.iterations <= bound,
                "n={n}: {} > {bound}",
                out.iterations
            );
            // And the count grows ~ log n: crude monotonicity check below.
        }
        // log n scaling: 100x vertices ≈ +log(100)/log(1/(1-ε)) iterations.
        let i1 = central(&generators::disjoint_edges(50), e).iterations;
        let i2 = central(&generators::disjoint_edges(5000), e).iterations;
        assert!(i2 > i1);
        assert!(
            (i2 - i1) < 60,
            "difference should be ~ log(100)/log(10/9) ≈ 44"
        );
    }

    #[test]
    fn cover_and_feasibility_invariants() {
        for seed in 0..5u64 {
            for g in [
                generators::gnp(80, 0.1, seed).unwrap(),
                generators::power_law(80, 2.5, 6.0, seed).unwrap(),
                generators::complete(20),
                generators::star(30),
            ] {
                for rule_seed in [None, Some(seed)] {
                    let out = match rule_seed {
                        None => central(&g, eps(0.1)),
                        Some(s) => central_rand(&g, eps(0.1), s),
                    };
                    assert!(out.cover.covers(&g), "cover invalid (seed {seed})");
                    assert!(out.fractional.is_feasible(&g), "y_v > 1 (seed {seed})");
                }
            }
        }
    }

    #[test]
    fn lemma_4_1_approximation_bounds() {
        // |C| <= (2+5ε)·VC* and Σx >= |M*|/(2+5ε), measured against exact
        // optima via blossom (|M*| <= VC* <= 2|M*|).
        let e = eps(0.1);
        let factor = 2.0 + 5.0 * 0.1;
        for seed in 0..8u64 {
            let g = generators::gnp(60, 0.12, seed).unwrap();
            let out = central(&g, e);
            let mm = matching::blossom(&g).len() as f64;
            if mm == 0.0 {
                continue;
            }
            // Fractional matching at least |M*|/(2+5ε).
            assert!(
                out.fractional.weight() >= mm / factor - 1e-9,
                "seed {seed}: weight {} < {}",
                out.fractional.weight(),
                mm / factor
            );
            // Cover within (2+5ε) of minimum VC; VC* >= |M*| gives the
            // checkable relaxation |C| <= (2+5ε)·VC* from |C| <= 2(1+5ε)Wм
            // and strong duality — here we check the weaker measurable form
            // |C| <= (2+5ε)·(2·|M*|) only loosely and the tight dual bound:
            assert!(
                (out.cover.len() as f64) <= factor * 2.0 * mm + 1e-9,
                "seed {seed}: cover {} vs 2(2+5ε)|M*| {}",
                out.cover.len(),
                factor * 2.0 * mm
            );
            // Dual relationship: cover >= fractional weight (weak duality).
            assert!(out.cover.len() as f64 >= out.fractional.weight() - 1e-9);
        }
    }

    #[test]
    fn central_rand_matches_central_structure() {
        // Same invariants under random thresholds. Individual vertices may
        // never freeze (all their edges frozen from the other side), but
        // every *edge* must end with a frozen endpoint.
        let g = generators::cycle(10);
        let out = central_rand(&g, eps(0.1), 42);
        for e in g.edges() {
            let fu = out.freeze_iteration[e.u() as usize];
            let fv = out.freeze_iteration[e.v() as usize];
            assert!(
                fu != NEVER_FROZEN || fv != NEVER_FROZEN,
                "edge {e:?} has no frozen endpoint"
            );
        }
        assert!(out.cover.covers(&g));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::gnp(50, 0.15, 3).unwrap();
        let a = central_rand(&g, eps(0.05), 7);
        let b = central_rand(&g, eps(0.05), 7);
        assert_eq!(a.freeze_iteration, b.freeze_iteration);
        assert_eq!(a.fractional, b.fractional);
    }

    #[test]
    fn custom_initial_weight() {
        let g = generators::path(2);
        let cfg = CentralConfig {
            eps: eps(0.1),
            thresholds: ThresholdRule::Fixed,
            initial_weight: Some(0.5),
        };
        let out = run_central(&g, &cfg);
        // From 0.5, reaching 0.8 takes ~5 growth steps (0.5·(10/9)^5 ≈ 0.81).
        assert!(out.iterations <= 6, "got {}", out.iterations);
    }

    #[test]
    #[should_panic(expected = "initial weight must be positive")]
    fn rejects_bad_initial_weight() {
        let g = generators::path(2);
        let cfg = CentralConfig {
            eps: eps(0.1),
            thresholds: ThresholdRule::Fixed,
            initial_weight: Some(0.0),
        };
        run_central(&g, &cfg);
    }
}
