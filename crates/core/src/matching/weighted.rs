//! `(2+ε)`-approximate maximum **weighted** matching (paper,
//! Corollary 1.4).
//!
//! The corollary invokes the reduction of Lotker, Patt-Shamir, and Rosén
//! \[LPSR09\]: bucket edges into geometric weight classes
//! `[(1+ε)^k, (1+ε)^{k+1})` and combine per-class *unweighted* matchings.
//! We implement the sequential heaviest-class-first form of the reduction:
//! for each class, in decreasing weight order, compute a maximal matching
//! among still-free vertices and keep it.
//!
//! **Approximation.** For any optimum edge `e`, when its class is
//! processed either `e` joins the matching or an endpoint of `e` is
//! already matched by an edge of weight at least `w_e/(1+ε)` (same or
//! heavier class). Charging each optimum edge to that blocking matched
//! edge, and noting each matched edge absorbs at most two charges, yields
//! `OPT ≤ 2(1+ε)·W(M)` — the `(2+ε)` guarantee.
//!
//! **Rounds.** Per class we run the \[LMSV11\] filtering maximal matching
//! (`Θ(n)` memory); the paper's `O(log log n · 1/ε)` bound comes from
//! running the `O(log log n)`-round unweighted algorithm per class with
//! the classes pipelined; the simulation reports the measured sequential
//! rounds alongside.

use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::filtering::{filtering_maximal_matching, FilteringConfig};
use mmvc_graph::matching::Matching;
use mmvc_graph::rng::hash2;
use mmvc_graph::weighted::WeightedGraph;
use mmvc_graph::Graph;

/// Configuration for [`weighted_matching`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedMatchingConfig {
    /// Approximation parameter `ε`.
    pub eps: Epsilon,
    /// Seed for the per-class subroutine.
    pub seed: u64,
}

impl WeightedMatchingConfig {
    /// Default configuration.
    pub fn new(eps: Epsilon, seed: u64) -> Self {
        WeightedMatchingConfig { eps, seed }
    }
}

/// Output of [`weighted_matching`].
#[derive(Debug, Clone)]
pub struct WeightedMatchingOutcome {
    /// The matching.
    pub matching: Matching,
    /// Its total weight.
    pub total_weight: f64,
    /// Number of non-empty weight classes processed.
    pub classes: usize,
    /// Total MPC rounds across the per-class subroutines.
    pub total_rounds: usize,
}

/// Computes a `(2+ε)`-approximate maximum weighted matching (paper,
/// Corollary 1.4) via geometric weight classes.
///
/// # Errors
///
/// Propagates [`CoreError`] from the per-class maximal-matching
/// subroutine.
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::{weighted_matching, WeightedMatchingConfig};
/// use mmvc_core::Epsilon;
/// use mmvc_graph::{generators, weighted::WeightedGraph};
///
/// let g = generators::gnp(60, 0.1, 1)?;
/// let wg = WeightedGraph::with_random_weights(g, 1.0, 100.0, 2)?;
/// let out = weighted_matching(&wg, &WeightedMatchingConfig::new(Epsilon::new(0.1)?, 3))?;
/// assert!(out.total_weight > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn weighted_matching(
    wg: &WeightedGraph,
    config: &WeightedMatchingConfig,
) -> Result<WeightedMatchingOutcome, CoreError> {
    let g = wg.graph();
    let n = g.num_vertices();
    let mut matching = Matching::empty(n);
    if g.num_edges() == 0 {
        return Ok(WeightedMatchingOutcome {
            matching,
            total_weight: 0.0,
            classes: 0,
            total_rounds: 0,
        });
    }

    // Class of an edge: floor(log_{1+ε} w).
    let base = (1.0 + config.eps.get()).ln();
    let class_of = |w: f64| -> i64 { (w.ln() / base).floor() as i64 };

    // Group edge endpoints by class (decoded from the edge view once,
    // here), heaviest class first.
    let mut classes: std::collections::BTreeMap<i64, Vec<(u32, u32)>> =
        std::collections::BTreeMap::new();
    for (i, e) in g.edges().iter().enumerate() {
        classes
            .entry(class_of(wg.weight(i)))
            .or_default()
            .push((e.u(), e.v()));
    }

    let mut total_rounds = 0usize;
    let mut class_count = 0usize;
    for (rank, (_, class_edges)) in classes.iter().rev().enumerate() {
        // Restrict the class to edges between still-free vertices.
        let pairs: Vec<(u32, u32)> = class_edges
            .iter()
            .copied()
            .filter(|&(u, v)| !matching.covers(u) && !matching.covers(v))
            .collect();
        if pairs.is_empty() {
            continue;
        }
        class_count += 1;
        let class_graph = Graph::from_edges(n, pairs)?;
        let sub = filtering_maximal_matching(
            &class_graph,
            &FilteringConfig::new(hash2(config.seed, rank as u64)),
        )?;
        total_rounds += sub.trace.rounds();
        matching.absorb(&sub.matching);
    }

    let total_weight = wg.matching_weight(&matching);
    Ok(WeightedMatchingOutcome {
        matching,
        total_weight,
        classes: class_count,
        total_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    fn cfg(seed: u64) -> WeightedMatchingConfig {
        WeightedMatchingConfig::new(Epsilon::new(0.1).unwrap(), seed)
    }

    #[test]
    fn valid_matching_output() {
        let g = generators::gnp(80, 0.1, 1).unwrap();
        let wg = WeightedGraph::with_random_weights(g.clone(), 1.0, 50.0, 2).unwrap();
        let out = weighted_matching(&wg, &cfg(3)).unwrap();
        for e in out.matching.edges() {
            assert!(g.has_edge(e.u(), e.v()));
        }
        let recomputed = wg.matching_weight(&out.matching);
        assert!((out.total_weight - recomputed).abs() < 1e-9);
    }

    #[test]
    fn two_plus_eps_vs_brute_force_on_tiny_graphs() {
        // 2(1+ε) guarantee checked against the exact optimum.
        for seed in 0..20u64 {
            let g = generators::gnp(8, 0.5, seed).unwrap();
            if g.num_edges() > 20 || g.num_edges() == 0 {
                continue;
            }
            let wg = WeightedGraph::with_random_weights(g, 1.0, 100.0, seed).unwrap();
            let out = weighted_matching(&wg, &cfg(seed)).unwrap();
            let opt = wg.brute_force_max_weight_matching();
            assert!(
                out.total_weight * 2.0 * 1.1 + 1e-9 >= opt,
                "seed {seed}: got {} vs opt {opt}",
                out.total_weight
            );
        }
    }

    #[test]
    fn prefers_heavy_edge_over_two_light() {
        // Path a-b-c-d with middle edge weight 100, sides weight 1: optimum
        // is {sides} = 2 only if 2 > 100 — no: optimum is the middle (100)
        // vs sides (2). Heaviest-first must take the middle edge.
        let g = generators::path(4);
        let wg = WeightedGraph::new(g, vec![1.0, 100.0, 1.0]).unwrap();
        let out = weighted_matching(&wg, &cfg(1)).unwrap();
        assert!(out.total_weight >= 100.0);
    }

    #[test]
    fn uniform_weights_degenerate_to_maximal() {
        let g = generators::gnp(60, 0.1, 4).unwrap();
        let wg = WeightedGraph::with_random_weights(g.clone(), 2.0, 2.0, 0).unwrap();
        let out = weighted_matching(&wg, &cfg(5)).unwrap();
        assert_eq!(out.classes, 1);
        assert!(
            out.matching.is_maximal(&g),
            "single class => maximal matching"
        );
    }

    #[test]
    fn empty_graph() {
        let g = mmvc_graph::Graph::empty(5);
        let wg = WeightedGraph::new(g, vec![]).unwrap();
        let out = weighted_matching(&wg, &cfg(0)).unwrap();
        assert_eq!(out.total_weight, 0.0);
        assert_eq!(out.classes, 0);
    }

    #[test]
    fn class_count_scales_with_weight_range() {
        let g = generators::gnp(100, 0.1, 6).unwrap();
        let narrow = WeightedGraph::with_random_weights(g.clone(), 1.0, 2.0, 1).unwrap();
        let wide = WeightedGraph::with_random_weights(g, 1.0, 10_000.0, 1).unwrap();
        let c_narrow = weighted_matching(&narrow, &cfg(7)).unwrap().classes;
        let c_wide = weighted_matching(&wide, &cfg(7)).unwrap().classes;
        assert!(c_wide > c_narrow);
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(70, 0.15, 8).unwrap();
        let wg = WeightedGraph::with_random_weights(g, 1.0, 30.0, 9).unwrap();
        let a = weighted_matching(&wg, &cfg(10)).unwrap();
        let b = weighted_matching(&wg, &cfg(10)).unwrap();
        assert_eq!(a.matching.edges(), b.matching.edges());
    }
}
