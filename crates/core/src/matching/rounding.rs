//! Randomized rounding of a fractional matching (paper, Lemma 5.1).
//!
//! Given a fractional matching `x` and a set `C̃` of vertices with load at
//! least `1 − β` (`β ≤ 1/2`), every vertex of `C̃` picks at most one
//! incident edge — neighbor `u` with probability `x_{uv}/10`, nothing
//! (`⋆`) otherwise. Among the chosen edges `H`, the *good* edges (those
//! sharing no endpoint with another chosen edge) form a matching of size
//! at least `|C̃|/50` with probability at least `1 − 2·exp(−|C̃|/5000)`.
//!
//! The decision of each vertex depends only on its own randomness and its
//! incident edge weights, so the procedure parallelizes trivially — one
//! MPC round; Section 5 of the paper uses exactly this observation.

use crate::error::CoreError;
use crate::matching::fractional::FractionalMatching;
use mmvc_graph::matching::Matching;
use mmvc_graph::rng::hash3_unit;
use mmvc_graph::{Graph, VertexId};

/// The sampling damping constant of Lemma 5.1: `P(X_v = u) = x_{uv} / 10`.
pub const SAMPLING_DAMPING: f64 = 10.0;

/// Rounds a fractional matching to an integral one (paper, Lemma 5.1).
///
/// `candidates` is the set `C̃` of rounding participants; the lemma's size
/// guarantee (`≥ |C̃|/50` w.h.p.) holds when every candidate has fractional
/// load at least `1 − β` for some `β ≤ 1/2`, but the *validity* of the
/// output (a genuine matching of `g`) holds unconditionally.
///
/// The returned matching consists of the *good* edges: chosen edges that
/// share no endpoint with any other chosen edge.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `candidates` contains an
/// out-of-range or duplicate vertex.
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::{round_fractional, FractionalMatching};
/// use mmvc_graph::generators;
///
/// let g = generators::disjoint_edges(100);
/// let x = FractionalMatching::new(&g, vec![0.9; 100]).unwrap();
/// let candidates: Vec<u32> = (0..200).collect();
/// let m = round_fractional(&g, &x, &candidates, 7)?;
/// assert!(m.len() >= 200 / 50); // Lemma 5.1 bound (loose in practice)
/// # Ok::<(), mmvc_core::CoreError>(())
/// ```
pub fn round_fractional(
    g: &Graph,
    x: &FractionalMatching,
    candidates: &[VertexId],
    seed: u64,
) -> Result<Matching, CoreError> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    for &v in candidates {
        if v as usize >= n {
            return Err(CoreError::InvalidParameter {
                name: "candidates",
                message: format!("vertex {v} out of range (n = {n})"),
            });
        }
        if seen[v as usize] {
            return Err(CoreError::InvalidParameter {
                name: "candidates",
                message: format!("vertex {v} appears twice"),
            });
        }
        seen[v as usize] = true;
    }

    // Incident edge indices per vertex (only needed for candidates).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, e) in g.edges().iter().enumerate() {
        incident[e.u() as usize].push(i as u32);
        incident[e.v() as usize].push(i as u32);
    }

    // Each candidate v draws X_v: neighbor u w.p. x_{uv}/10, else ⋆.
    // One uniform draw per vertex, inverted through the cumulative
    // distribution over incident edges.
    let mut chosen: Vec<u32> = Vec::new(); // edge indices in H
    for &v in candidates {
        let r = hash3_unit(seed, v as u64, 0);
        let mut cum = 0.0f64;
        for &ei in &incident[v as usize] {
            cum += x.edge_weight(ei as usize) / SAMPLING_DAMPING;
            if r < cum {
                chosen.push(ei);
                break;
            }
        }
        // r >= cum at the end means X_v = ⋆ (probability >= 9/10).
    }

    // H is a set of edges: deduplicate double picks (X_u = v and X_v = u).
    chosen.sort_unstable();
    chosen.dedup();

    // Good edges: no other edge of H incident to either endpoint.
    let mut h_degree = vec![0u32; n];
    for &ei in &chosen {
        let e = g.edges().get(ei as usize);
        h_degree[e.u() as usize] += 1;
        h_degree[e.v() as usize] += 1;
    }
    let mut matching = Matching::empty(n);
    for &ei in &chosen {
        let e = g.edges().get(ei as usize);
        if h_degree[e.u() as usize] == 1 && h_degree[e.v() as usize] == 1 {
            let added = matching.try_add(e.u(), e.v());
            debug_assert!(added, "good edges are vertex-disjoint by definition");
        }
    }
    Ok(matching)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::Epsilon;
    use crate::matching::central::central_rand;
    use mmvc_graph::generators;

    #[test]
    fn output_is_valid_matching() {
        let g = generators::gnp(200, 0.1, 1).unwrap();
        let out = central_rand(&g, Epsilon::new(0.1).unwrap(), 2);
        let candidates = out.fractional.heavy_vertices(&g, 0.5);
        let m = round_fractional(&g, &out.fractional, &candidates, 3).unwrap();
        for e in m.edges() {
            assert!(g.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn lemma_5_1_size_bound() {
        // On a reasonably large instance, |M| >= |C̃|/50 w.h.p. (empirically
        // the constant is far better; we assert the lemma's bound).
        for seed in 0..10u64 {
            let g = generators::gnp(500, 0.05, seed).unwrap();
            let out = central_rand(&g, Epsilon::new(0.1).unwrap(), seed);
            let candidates = out.fractional.heavy_vertices(&g, 0.5);
            assert!(!candidates.is_empty());
            let m = round_fractional(&g, &out.fractional, &candidates, seed ^ 0xABCD).unwrap();
            assert!(
                50 * m.len() >= candidates.len(),
                "seed {seed}: matched {} vs |C̃| = {}",
                m.len(),
                candidates.len()
            );
        }
    }

    #[test]
    fn empty_candidates_empty_matching() {
        let g = generators::cycle(10);
        let x = FractionalMatching::zero(&g);
        let m = round_fractional(&g, &x, &[], 0).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn zero_weights_match_nothing() {
        let g = generators::cycle(10);
        let x = FractionalMatching::zero(&g);
        let candidates: Vec<u32> = (0..10).collect();
        let m = round_fractional(&g, &x, &candidates, 5).unwrap();
        assert!(m.is_empty(), "X_v = ⋆ almost surely under zero weights");
    }

    #[test]
    fn rejects_bad_candidates() {
        let g = generators::cycle(4);
        let x = FractionalMatching::zero(&g);
        assert!(matches!(
            round_fractional(&g, &x, &[9], 0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            round_fractional(&g, &x, &[1, 1], 0),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::gnp(100, 0.1, 3).unwrap();
        let out = central_rand(&g, Epsilon::new(0.1).unwrap(), 4);
        let c = out.fractional.heavy_vertices(&g, 0.5);
        let a = round_fractional(&g, &out.fractional, &c, 9).unwrap();
        let b = round_fractional(&g, &out.fractional, &c, 9).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn double_pick_counted_once() {
        // Single heavy edge: both endpoints may pick each other; the edge
        // must appear at most once and be good.
        let g = generators::disjoint_edges(1);
        let x = FractionalMatching::new(&g, vec![1.0]).unwrap();
        // Try many seeds; whenever anything is matched it is exactly {0,1}.
        let mut matched_at_least_once = false;
        for seed in 0..200u64 {
            let m = round_fractional(&g, &x, &[0, 1], seed).unwrap();
            assert!(m.len() <= 1);
            if m.len() == 1 {
                matched_at_least_once = true;
                assert_eq!(m.mate(0), Some(1));
            }
        }
        // P(match) >= 2·(1/10)·(9/10) - 1/100 ≈ 0.17 per seed; over 200
        // seeds missing every time is astronomically unlikely.
        assert!(matched_at_least_once);
    }

    #[test]
    fn expected_match_rate_on_perfect_fractional() {
        // Disjoint edges with x_e = 1: each edge is matched iff at least
        // one endpoint picks it and the other doesn't pick conflicting —
        // here no conflicts exist, so P(edge matched) = 1-(1-1/10)^2 = 0.19.
        let k = 2000;
        let g = generators::disjoint_edges(k);
        let x = FractionalMatching::new(&g, vec![1.0; k]).unwrap();
        let candidates: Vec<u32> = (0..2 * k as u32).collect();
        let m = round_fractional(&g, &x, &candidates, 42).unwrap();
        let rate = m.len() as f64 / k as f64;
        assert!((rate - 0.19).abs() < 0.03, "rate {rate} far from 0.19");
    }
}
