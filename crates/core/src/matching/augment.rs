//! `(1+ε)`-approximate maximum matching via short augmenting paths
//! (paper, Corollary 1.3).
//!
//! The corollary applies McGregor's technique \[McG05\] on top of the
//! Theorem 1.2 matching: repeatedly eliminate augmenting paths of bounded
//! length. The guarantee rests on the folklore lemma both rely on: *a
//! matching admitting no augmenting path of fewer than `2/ε + 1` edges is
//! a `(1+ε)`-approximation of the maximum matching*.
//!
//! **Substitution note (recorded in DESIGN.md):** McGregor's randomized
//! layered search is replaced by deterministic passes of depth-bounded
//! alternating DFS that flip a maximal set of vertex-disjoint short
//! augmenting paths per pass. On bipartite graphs this finds every short
//! augmenting path (no odd cycles); on general graphs it may miss paths
//! through blossoms, so the `(1+ε)` figure is *measured* against the exact
//! optimum in experiment E6 rather than assumed. The paper's round bound
//! for this stage is `O(log log n) · (1/ε)^{O(1/ε)}`; the simulation
//! reports passes, each of which corresponds to one `O(log log n)`-round
//! matching-extraction stage of the McGregor reduction.

use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::matching::integral::{integral_matching, IntegralMatchingConfig};
use mmvc_graph::matching::Matching;
use mmvc_graph::{Graph, VertexId};

/// Configuration for [`one_plus_eps_matching`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Target approximation parameter.
    pub eps: Epsilon,
    /// Seed for the initial Theorem 1.2 matching.
    pub seed: u64,
    /// Upper bound on augmentation passes (defaults to a generous
    /// `8·(1/ε)` when `None`; the process usually converges much sooner).
    pub max_passes: Option<usize>,
}

impl AugmentConfig {
    /// Default configuration.
    pub fn new(eps: Epsilon, seed: u64) -> Self {
        AugmentConfig {
            eps,
            seed,
            max_passes: None,
        }
    }
}

/// Output of [`one_plus_eps_matching`].
#[derive(Debug, Clone)]
pub struct AugmentOutcome {
    /// The final matching.
    pub matching: Matching,
    /// Augmentation passes executed after the initial `(2+ε)` stage.
    pub passes: usize,
    /// Total augmenting paths flipped.
    pub augmentations: usize,
    /// MPC rounds consumed by the initial Theorem 1.2 stage.
    pub initial_rounds: usize,
    /// The maximum augmenting-path length eliminated, `2·ceil(1/ε) − 1`
    /// edges.
    pub path_limit: usize,
}

/// Computes a `(1+ε)`-approximate maximum matching (paper, Corollary 1.3):
/// the Theorem 1.2 matching followed by elimination of augmenting paths of
/// fewer than `2/ε + 1` edges.
///
/// # Errors
///
/// Propagates [`CoreError`] from the initial matching stage.
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::{one_plus_eps_matching, AugmentConfig};
/// use mmvc_core::Epsilon;
/// use mmvc_graph::generators;
///
/// let g = generators::bipartite_gnp(50, 50, 0.1, 1)?;
/// let out = one_plus_eps_matching(&g, &AugmentConfig::new(Epsilon::new(0.1)?, 2))?;
/// let opt = mmvc_graph::matching::hopcroft_karp(&g)?.len();
/// assert!((out.matching.len() as f64) * 1.1 >= opt as f64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn one_plus_eps_matching(
    g: &Graph,
    config: &AugmentConfig,
) -> Result<AugmentOutcome, CoreError> {
    let initial = integral_matching(g, &IntegralMatchingConfig::new(config.eps, config.seed))?;
    let mut matching = initial.matching;

    // No augmenting path of length < 2k+1 where k = ceil(1/ε) implies a
    // (1 + 1/k) <= (1+ε) approximation.
    let k = (1.0 / config.eps.get()).ceil() as usize;
    let path_limit = 2 * k - 1;
    let max_passes = config.max_passes.unwrap_or(8 * k);

    let mut passes = 0usize;
    let mut augmentations = 0usize;
    while passes < max_passes {
        let flipped = augmentation_pass(g, &mut matching, path_limit);
        passes += 1;
        augmentations += flipped;
        if flipped == 0 {
            break;
        }
    }

    Ok(AugmentOutcome {
        matching,
        passes,
        augmentations,
        initial_rounds: initial.total_rounds,
        path_limit,
    })
}

/// Flips a maximal set of vertex-disjoint augmenting paths of at most
/// `limit` edges; returns how many were flipped.
///
/// Exposed for tests and for callers that maintain their own matching.
pub fn augmentation_pass(g: &Graph, matching: &mut Matching, limit: usize) -> usize {
    let n = g.num_vertices();
    // `used`: vertices already consumed by a flipped path this pass.
    let mut used = vec![false; n];
    let mut flipped = 0usize;

    let free: Vec<VertexId> = (0..n as u32).filter(|&v| !matching.covers(v)).collect();
    for root in free {
        if used[root as usize] || matching.covers(root) {
            continue;
        }
        // `visited` is per-DFS to keep the search linear.
        let mut visited = vec![false; n];
        let mut path = Vec::new();
        if dfs(g, matching, &used, &mut visited, &mut path, root, limit) {
            // `path` is v0, v1, ..., v_{2k+1} alternating free/matched.
            matching.augment_along(&path);
            for &v in &path {
                used[v as usize] = true;
            }
            flipped += 1;
        }
    }
    flipped
}

/// Alternating DFS: find an augmenting path of at most `limit` edges
/// starting at free vertex `v`. `path` collects vertices; returns success.
fn dfs(
    g: &Graph,
    matching: &Matching,
    used: &[bool],
    visited: &mut [bool],
    path: &mut Vec<VertexId>,
    v: VertexId,
    edges_left: usize,
) -> bool {
    visited[v as usize] = true;
    path.push(v);
    for &u in g.neighbors(v) {
        if visited[u as usize] || used[u as usize] {
            continue;
        }
        match matching.mate(u) {
            None => {
                // Free neighbor: augmenting path found.
                path.push(u);
                return true;
            }
            Some(w) => {
                if edges_left >= 3 && !visited[w as usize] && !used[w as usize] {
                    visited[u as usize] = true;
                    path.push(u);
                    if dfs(g, matching, used, visited, path, w, edges_left - 2) {
                        return true;
                    }
                    path.pop();
                }
            }
        }
    }
    path.pop();
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::{generators, matching as gm};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn augmentation_pass_fixes_trivial_gap() {
        // Path 0-1-2-3 with middle edge matched: one augmenting path of
        // length 3 yields the perfect matching.
        let g = generators::path(4);
        let mut m = Matching::new(&g, vec![(1, 2)]).unwrap();
        let flipped = augmentation_pass(&g, &mut m, 3);
        assert_eq!(flipped, 1);
        assert_eq!(m.len(), 2);
        assert!(m.covers(0) && m.covers(3));
    }

    #[test]
    fn limit_one_only_matches_free_edges() {
        let g = generators::path(4);
        let mut m = Matching::new(&g, vec![(1, 2)]).unwrap();
        // Limit 1: no length-3 path allowed; nothing to flip (edges {0,1}
        // and {2,3} have a matched endpoint).
        assert_eq!(augmentation_pass(&g, &mut m, 1), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reaches_optimum_on_bipartite() {
        for seed in 0..6u64 {
            let g = generators::bipartite_gnp(40, 40, 0.08, seed).unwrap();
            let out = one_plus_eps_matching(&g, &AugmentConfig::new(eps(0.1), seed)).unwrap();
            let opt = gm::hopcroft_karp(&g).unwrap().len();
            assert!(
                (out.matching.len() as f64) * 1.1 + 1e-9 >= opt as f64,
                "seed {seed}: {} vs opt {opt}",
                out.matching.len()
            );
        }
    }

    #[test]
    fn close_to_optimum_on_general_graphs() {
        for seed in 0..6u64 {
            let g = generators::gnp(100, 0.06, seed).unwrap();
            let out = one_plus_eps_matching(&g, &AugmentConfig::new(eps(0.1), seed)).unwrap();
            let opt = gm::blossom(&g).len();
            assert!(
                (out.matching.len() as f64) * 1.1 + 1e-9 >= opt as f64,
                "seed {seed}: {} vs opt {opt}",
                out.matching.len()
            );
        }
    }

    #[test]
    fn output_is_valid_matching() {
        let g = generators::gnp(120, 0.08, 3).unwrap();
        let out = one_plus_eps_matching(&g, &AugmentConfig::new(eps(0.1), 3)).unwrap();
        for e in out.matching.edges() {
            assert!(g.has_edge(e.u(), e.v()));
        }
        assert!(
            out.matching.is_maximal(&g),
            "a 1+ε matching is in particular maximal"
        );
    }

    #[test]
    fn converges_and_reports_passes() {
        let g = generators::cycle(50);
        let out = one_plus_eps_matching(&g, &AugmentConfig::new(eps(0.1), 1)).unwrap();
        assert!(out.passes >= 1);
        assert_eq!(out.path_limit, 2 * 10 - 1);
        // C_50 has maximum matching 25.
        assert!(out.matching.len() >= 23);
    }

    #[test]
    fn pass_cap_respected() {
        let g = generators::gnp(80, 0.1, 5).unwrap();
        let mut cfg = AugmentConfig::new(eps(0.1), 5);
        cfg.max_passes = Some(1);
        let out = one_plus_eps_matching(&g, &cfg).unwrap();
        assert!(out.passes <= 1);
    }
}
