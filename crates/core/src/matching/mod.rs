//! Matching and vertex-cover algorithms (paper, Sections 4 and 5).
//!
//! The pipeline, bottom to top:
//!
//! 1. [`run_central`] / [`central`] / [`central_rand`] — the sequential
//!    `O(log n)`-iteration fractional-matching + vertex-cover algorithm
//!    (Sections 4.1, 4.3; Lemma 4.1).
//! 2. [`mpc_simulation`] — the `O(log log n)`-round MPC simulation
//!    (Section 4.3; Lemma 4.2), producing a `(2+O(ε))` fractional matching
//!    and vertex cover.
//! 3. [`round_fractional`] — the Lemma 5.1 randomized rounding to an
//!    integral matching.
//! 4. [`integral_matching`] — Theorem 1.2: iterated extraction to an
//!    integral `(2+ε)` matching plus the `(2+ε)` cover.
//! 5. [`one_plus_eps_matching`] — Corollary 1.3: `(1+ε)` via short
//!    augmenting paths.
//! 6. [`weighted_matching`] — Corollary 1.4: `(2+ε)` weighted matching via
//!    geometric weight classes.

mod augment;
mod central;
mod fractional;
mod integral;
mod mpc_sim;
mod rounding;
mod weighted;

pub use augment::{augmentation_pass, one_plus_eps_matching, AugmentConfig, AugmentOutcome};
pub use central::{
    central, central_rand, run_central, CentralConfig, CentralOutcome, ThresholdRule, NEVER_FROZEN,
};
pub use fractional::FractionalMatching;
pub use integral::{integral_matching, IntegralMatchingConfig, IntegralMatchingOutcome};
pub use mpc_sim::{
    mpc_simulation, MpcMatchingConfig, MpcMatchingOutcome, PhaseSchedule, SimDiagnostics,
    ThresholdMode,
};
pub use rounding::{round_fractional, SAMPLING_DAMPING};
pub use weighted::{weighted_matching, WeightedMatchingConfig, WeightedMatchingOutcome};
