//! `MPC-Simulation` (paper, Section 4.3): the `O(log log n)`-round MPC
//! simulation of `Central-Rand`, producing a `(2+O(ε))`-approximate
//! fractional maximum matching and integral minimum vertex cover
//! (Lemma 4.2).
//!
//! Structure, following the pseudocode:
//!
//! 1. While the degree bound `d` exceeds a polylog threshold, run a
//!    *phase*: partition the remaining vertices over `m = √d` machines,
//!    let every machine locally simulate iterations of `Central-Rand` on
//!    its induced subgraph using the scaled estimate
//!    `ỹ_v = m·Σ_local x_e + y_old(v)` and the shared random thresholds
//!    `T(v,t)`, then reconcile edge weights from the recorded freeze
//!    iterations, remove vertices whose weight exceeded 1, and freeze
//!    those above `1 − 2ε`.
//! 2. Once `d` is polylogarithmic, simulate the remaining iterations of
//!    `Central-Rand` directly (one MPC round each).
//!
//! ### Paper constants vs. practical constants
//!
//! The paper's constants are calibrated for the asymptotic analysis:
//! phases run `I = log m / (10 log 5)` iterations (so that the estimate
//! drift `5^I` stays below `m^{0.1}`, Lemma 4.15) and the loop exits at
//! `d ≤ log²⁰ n`. At experimentally reachable `n`, `log²⁰ n ≫ n` (the
//! loop would never run) and `I < 1`. [`PhaseSchedule`] therefore offers
//! both the literal constants ([`PhaseSchedule::Paper`]) and a
//! structure-preserving practical variant ([`PhaseSchedule::Practical`])
//! that keeps the estimate error in the regime the analysis needs while
//! making the `log log` phase behaviour observable:
//!
//! * `d` is the *measured* maximum active degree (the tightest bound
//!   Lemma 4.6 permits) instead of the worst-case pessimistic `n`;
//! * each phase grows edge weights by `F = max(2, ε·√d)`, which caps the
//!   estimate quantum `m·w` at `O(ε)` for every vertex in the phase's
//!   action band — the practical analogue of the `5^I ≤ m^{0.1}` drift
//!   bound — while still shrinking `d → √d/ε` per phase, i.e.
//!   `O(log log Δ)` phases;
//! * iterations in which *no* vertex can freeze (every estimate is below
//!   the minimum threshold `1 − 4ε`) are fast-forwarded inside the
//!   machine: this is exact, not an approximation, because a vertex with
//!   `ỹ < 1 − 4ε` cannot cross any admissible threshold.
//!
//! Experiment E8 measures the estimate drift and bad-vertex fraction under
//! this schedule — the quantities the paper's constants are engineered to
//! bound.

use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::matching::central::{ThresholdRule, NEVER_FROZEN};
use crate::matching::fractional::FractionalMatching;
use crate::PAR_CHUNK;
use mmvc_graph::rng::hash2;
use mmvc_graph::vertex_cover::VertexCover;
use mmvc_graph::{Graph, VertexId};
use mmvc_mpc::{random_vertex_partition, Cluster, MpcConfig};
use mmvc_substrate::{ExecutorConfig, Substrate};

/// Iterations-per-phase and loop-exit schedule; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSchedule {
    /// The literal constants of the pseudocode: assumed `d` starting at
    /// `n` decaying by `(1−ε)^I` with `I = log m / (10 log 5)` (at least
    /// 1), phase loop while `d > log²⁰ n`.
    Paper,
    /// Structure-preserving practical constants (measured `d`, weight
    /// growth `F = max(2, ε·√d)` per phase, no-op fast-forwarding, exit at
    /// `d ≤ max(16, log² n)`). See the module docs.
    Practical,
}

impl PhaseSchedule {
    /// The `d` value at or below which the phase loop exits.
    pub fn d_min(&self, n: usize) -> f64 {
        let log2n = (n.max(2) as f64).log2();
        match self {
            PhaseSchedule::Paper => log2n.powi(20),
            PhaseSchedule::Practical => log2n.powi(2).max(16.0),
        }
    }
}

/// How the freezing thresholds are drawn (ablation knob).
///
/// The paper's §4.2 explains why a *fixed* threshold makes the
/// distributed estimates fragile — any estimation error near the single
/// threshold flips decisions — and §4.3 introduces the random thresholds
/// to fix it. [`ThresholdMode::Fixed`] exists to reproduce that failure
/// mode experimentally (ablation E11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdMode {
    /// `T(v,t) ~ U[1−4ε, 1−2ε]` (the paper's `Central-Rand`, default).
    #[default]
    Random,
    /// Fixed `T = 1−2ε` (the naive §4.2 simulation, for ablations).
    Fixed,
}

/// Configuration of [`mpc_simulation`].
#[derive(Debug, Clone, PartialEq)]
pub struct MpcMatchingConfig {
    /// Approximation parameter `ε`.
    pub eps: Epsilon,
    /// Seed for thresholds and partitioning.
    pub seed: u64,
    /// Phase schedule (paper vs. practical constants).
    pub schedule: PhaseSchedule,
    /// Per-machine memory is `space_factor · n` words (paper: `O(n)`).
    pub space_factor: f64,
    /// When set, the simulation also runs the coupled `Central-Rand`
    /// reference with identical thresholds and reports deviation
    /// diagnostics (Definition 4.9 / Lemma 4.15 quantities).
    pub diagnostics: bool,
    /// Threshold drawing mode (ablation knob; default random).
    pub threshold_mode: ThresholdMode,
    /// Machine-count multiplier: each phase uses `ceil(c·√d)` machines
    /// (paper: `c = 1`). Larger `c` shrinks per-machine subgraphs but
    /// *increases* estimate noise `∝ √(m/deg)` — ablation E12.
    pub machine_factor: f64,
    /// How per-machine local work executes (results are identical for any
    /// executor; see [`ExecutorConfig`]).
    pub executor: ExecutorConfig,
}

impl MpcMatchingConfig {
    /// Default configuration: practical schedule, 8n words per machine,
    /// random thresholds, `m = √d`, no diagnostics, threaded executor.
    pub fn new(eps: Epsilon, seed: u64) -> Self {
        MpcMatchingConfig {
            eps,
            seed,
            schedule: PhaseSchedule::Practical,
            space_factor: 8.0,
            diagnostics: false,
            threshold_mode: ThresholdMode::Random,
            machine_factor: 1.0,
            executor: ExecutorConfig::default(),
        }
    }

    /// The sublinear-memory regime the paper sketches at the end of §1.3:
    /// `S = Θ(n / reduction)` words per machine (for a polylogarithmic
    /// `reduction` factor), compensated by `√reduction`-times more
    /// machines per phase so each induced subgraph still fits
    /// (`n·d/m² = n/reduction` edges), at the cost of `reduction^{1/4}`
    /// more estimate noise.
    ///
    /// # Panics
    ///
    /// Panics if `reduction < 1` or is not finite.
    pub fn sublinear(eps: Epsilon, seed: u64, reduction: f64) -> Self {
        assert!(
            reduction.is_finite() && reduction >= 1.0,
            "memory reduction factor must be >= 1, got {reduction}"
        );
        MpcMatchingConfig {
            eps,
            seed,
            schedule: PhaseSchedule::Practical,
            space_factor: 8.0 / reduction,
            diagnostics: false,
            threshold_mode: ThresholdMode::Random,
            machine_factor: reduction.sqrt(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// Deviation diagnostics from the coupled `Central-Rand` reference run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimDiagnostics {
    /// Vertices whose freeze behaviour diverged from the reference in some
    /// phase (Definition 4.9), summed over phases.
    pub bad_vertices: usize,
    /// Vertices that were compared at least once (active at some phase
    /// start), summed over phases — denominator for the bad fraction.
    pub compared_vertices: usize,
    /// Largest observed `|y_v − ỹ_v|` over all phase iterations and
    /// vertices active in both processes (Lemma 4.15 bounds this by
    /// `m^{-0.1}` under the paper's constants).
    pub max_estimate_error: f64,
}

impl SimDiagnostics {
    /// Fraction of compared vertices that went bad (0 when nothing was
    /// compared).
    pub fn bad_fraction(&self) -> f64 {
        if self.compared_vertices == 0 {
            0.0
        } else {
            self.bad_vertices as f64 / self.compared_vertices as f64
        }
    }
}

/// Output of [`mpc_simulation`].
#[derive(Debug, Clone)]
pub struct MpcMatchingOutcome {
    /// The fractional matching (Lemma 4.2: weight within `(2+50ε)` of the
    /// maximum matching). Edges incident to removed vertices carry zero
    /// weight.
    pub fractional: FractionalMatching,
    /// The vertex cover: all frozen vertices plus all removed ones
    /// (Lemma 4.2: within `(2+50ε)` of the minimum vertex cover).
    pub cover: VertexCover,
    /// Vertices of the cover whose fractional weight is at least `1 − 5ε`
    /// — the set `C̃` handed to the Lemma 5.1 rounding (Lemma 4.2
    /// guarantees at least `|C|/3` of them).
    pub heavy_certificate: Vec<VertexId>,
    /// Number of phases executed by the main loop.
    pub phases: usize,
    /// Total `Central-Rand` iterations covered (simulated + fast-forwarded
    /// + tail).
    pub iterations: usize,
    /// Iterations executed by the direct tail simulation (step (4)).
    pub tail_iterations: usize,
    /// Vertices removed for exceeding weight 1 (line (i)).
    pub removed: Vec<bool>,
    /// Per-vertex freeze iteration ([`NEVER_FROZEN`] = never froze).
    pub freeze_iteration: Vec<u32>,
    /// The metered MPC execution (rounds, per-machine loads).
    pub trace: mmvc_substrate::ExecutionTrace,
    /// Deviation diagnostics, when requested via
    /// [`MpcMatchingConfig::diagnostics`].
    pub diagnostics: Option<SimDiagnostics>,
}

/// Internal mutable state shared by phases and tail.
struct SimState<'g> {
    g: &'g Graph,
    eps: Epsilon,
    thresholds: ThresholdRule,
    w0: f64,
    growth: f64,
    /// Freeze iteration per vertex (`NEVER_FROZEN` = active).
    freeze: Vec<u32>,
    /// Removed (weight exceeded 1) per vertex.
    removed: Vec<bool>,
    /// Global iteration counter `t`.
    t: u32,
    /// Executor for per-machine local scans (deterministic chunking).
    exec: ExecutorConfig,
}

impl SimState<'_> {
    fn is_active_vertex(&self, v: usize) -> bool {
        !self.removed[v] && self.freeze[v] == NEVER_FROZEN
    }

    /// Current weight of active edges, `w_t = w₀ / (1−ε)^t`.
    fn w_t(&self) -> f64 {
        self.w0 * self.growth.powi(self.t as i32)
    }

    /// Weight of an edge at the current iteration, `0` if an endpoint was
    /// removed (endpoint form — every scan iterates the edge view, so no
    /// per-index decode is ever needed).
    fn edge_weight_of(&self, e: mmvc_graph::Edge) -> f64 {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if self.removed[u] || self.removed[v] {
            return 0.0;
        }
        let frozen_at = self.freeze[u].min(self.freeze[v]).min(self.t);
        self.w0 * self.growth.powi(frozen_at as i32)
    }

    /// Exact vertex loads `yᴹᴾᶜ` over `G[V']` at the current iteration.
    fn vertex_weights(&self) -> Vec<f64> {
        let mut y = vec![0.0f64; self.g.num_vertices()];
        for e in self.g.edges() {
            let w = self.edge_weight_of(e);
            if w > 0.0 {
                y[e.u() as usize] += w;
                y[e.v() as usize] += w;
            }
        }
        y
    }

    /// Maximum degree among active edges (both endpoints active): every
    /// (simulated) machine scans its vertex chunk and the chunk maxima
    /// combine — an integer max, schedule-independent under any executor.
    fn max_active_degree(&self) -> usize {
        let n = self.g.num_vertices();
        self.exec
            .run_chunked(n, PAR_CHUNK, |range| {
                range
                    .filter(|&v| self.is_active_vertex(v))
                    .map(|v| {
                        self.g
                            .neighbors(v as u32)
                            .iter()
                            .filter(|&&u| self.is_active_vertex(u as usize))
                            .count()
                    })
                    .max()
                    .unwrap_or(0)
            })
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    fn seed_base(&self) -> u64 {
        match self.thresholds {
            ThresholdRule::Random { seed } => seed ^ 0xA5A5_5A5A_DEAD_BEEF,
            ThresholdRule::Fixed => 0xA5A5_5A5A_DEAD_BEEF,
        }
    }
}

/// How a phase decides its length.
enum PhasePlan {
    /// Exactly this many simulated iterations (paper constants).
    FixedIterations(usize),
    /// Simulate (with exact no-op fast-forwarding) until the active edge
    /// weight has grown by this factor.
    GrowthWithSkip(f64),
}

/// Runs `MPC-Simulation` (paper, Section 4.3).
///
/// Returns the fractional matching, vertex cover, and full execution
/// metering; see [`MpcMatchingOutcome`].
///
/// # Errors
///
/// * [`CoreError::Mpc`] if a machine's memory budget is exceeded while
///   gathering an induced subgraph — the simulator verifies the paper's
///   `O(n)`-per-machine claim instead of assuming it.
/// * [`CoreError::InvalidParameter`] for a non-positive `space_factor`.
pub fn mpc_simulation(
    g: &Graph,
    config: &MpcMatchingConfig,
) -> Result<MpcMatchingOutcome, CoreError> {
    if !config.space_factor.is_finite() || config.space_factor <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "space_factor",
            message: format!("must be positive, got {}", config.space_factor),
        });
    }
    if !config.machine_factor.is_finite() || config.machine_factor <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "machine_factor",
            message: format!("must be positive, got {}", config.machine_factor),
        });
    }

    let n = g.num_vertices();
    let eps = config.eps;
    let w0 = (1.0 - 2.0 * eps.get()) / n.max(1) as f64;

    // Cluster sized for the first (largest) phase: m = ceil(c·sqrt(n)).
    let max_machines = ((config.machine_factor * (n.max(4) as f64).sqrt()).ceil() as usize).max(2);
    let words = ((config.space_factor * n.max(1) as f64).ceil() as usize).max(16);
    let mut cluster =
        Cluster::new(MpcConfig::new(max_machines, words)?).with_executor(config.executor.clone());

    let thresholds = match config.threshold_mode {
        ThresholdMode::Random => ThresholdRule::Random { seed: config.seed },
        ThresholdMode::Fixed => ThresholdRule::Fixed,
    };
    let mut state = SimState {
        g,
        eps,
        thresholds,
        w0,
        growth: eps.growth_factor(),
        freeze: vec![NEVER_FROZEN; n],
        removed: vec![false; n],
        t: 0,
        exec: config.executor.clone(),
    };
    let mut diagnostics = config.diagnostics.then(SimDiagnostics::default);

    if g.num_edges() == 0 {
        return Ok(finish(state, 0, 0, cluster, diagnostics));
    }

    let d_min = config.schedule.d_min(n);
    // Assumed degree bound for the Paper schedule.
    let mut d_assumed = n as f64;
    let mut phases = 0usize;
    // Guards against schedule misconfiguration; unreachable in practice.
    let phase_cap = 10_000usize;

    loop {
        if phases >= phase_cap {
            break;
        }
        let (d, plan) = match config.schedule {
            PhaseSchedule::Paper => {
                if d_assumed <= d_min {
                    break;
                }
                let m = d_assumed.sqrt().ceil() as usize;
                let i = (((m as f64).ln() / (10.0 * 5f64.ln())) as usize).max(1);
                (d_assumed, PhasePlan::FixedIterations(i))
            }
            PhaseSchedule::Practical => {
                let d_act = state.max_active_degree() as f64;
                if d_act <= d_min {
                    break;
                }
                // Action-window growth per phase: the ε·d^(1/4) term is the
                // asymptotic schedule (it dominates exactly where the
                // estimate noise ~ d^(-1/4) is small enough to afford long
                // phases); the 1.5 floor keeps windows short at practical
                // scales so that one unlucky partition cannot strand a
                // vertex past weight 1 before the next exact
                // reconciliation.
                let factor = (eps.get() * d_act.powf(0.25)).max(1.5);
                (d_act, PhasePlan::GrowthWithSkip(factor))
            }
        };

        let m = ((config.machine_factor * d.sqrt()).ceil() as usize).clamp(2, max_machines);
        let covered = run_phase(&mut state, &mut cluster, &mut diagnostics, m, &plan, phases)?;
        if let PhaseSchedule::Paper = config.schedule {
            d_assumed *= (1.0 - eps.get()).powi(covered as i32);
        }
        phases += 1;

        // Post-phase reconciliation (lines (h)–(j)): exact weights.
        let y = state.vertex_weights();
        #[allow(clippy::needless_range_loop)] // indexes three parallel arrays
        for v in 0..n {
            if state.removed[v] {
                continue;
            }
            if y[v] > 1.0 {
                // Line (i): remove from V', goes to the cover.
                state.removed[v] = true;
            } else if state.freeze[v] == NEVER_FROZEN && y[v] > 1.0 - 2.0 * eps.get() {
                // Line (j): freeze heavy-but-feasible vertices.
                state.freeze[v] = state.t;
            }
        }
    }

    // Step (4): direct simulation of the remaining Central-Rand
    // iterations until every edge is frozen. Iterations in which some
    // vertex could freeze (its load reaches the minimum threshold 1−4ε)
    // cost one MPC round each; iterations that provably freeze nothing
    // require no communication at all — every machine can grow its local
    // weights deterministically — and are charged zero rounds.
    let mut tail_iterations = 0usize;
    let tail_cap = eps.iterations_to_grow(w0, 1.0) + 2;
    let t_min_threshold = state.thresholds.min_threshold(eps);
    loop {
        // Every machine counts the active edges of its chunk (integer sum
        // over fixed chunks — schedule-independent).
        let active_edges: usize = state
            .exec
            .run_chunked(g.num_edges(), PAR_CHUNK, |range| {
                g.edges()
                    .range(range)
                    .filter(|e| {
                        state.is_active_vertex(e.u() as usize)
                            && state.is_active_vertex(e.v() as usize)
                    })
                    .count()
            })
            .into_iter()
            .sum();
        if active_edges == 0 || (state.t as usize) >= tail_cap {
            break;
        }
        let y = state.vertex_weights();
        let could_freeze = state
            .exec
            .run_chunked(n, PAR_CHUNK, |range| {
                range
                    .clone()
                    .any(|v| state.is_active_vertex(v) && y[v] >= t_min_threshold)
            })
            .into_iter()
            .any(|b| b);
        if could_freeze {
            let to_freeze: Vec<usize> = state
                .exec
                .run_chunked(n, PAR_CHUNK, |range| {
                    range
                        .filter(|&v| {
                            state.is_active_vertex(v)
                                && y[v] >= state.thresholds.threshold(eps, v as u32, state.t)
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            for v in to_freeze {
                state.freeze[v] = state.t;
            }
            tail_iterations += 1;
            // One MPC round per communicating iteration; each machine
            // holds its share of the active edges.
            let share = (2 * active_edges).div_ceil(max_machines).max(1);
            cluster.charge_rounds(1, share.min(words))?;
        }
        state.t += 1;
    }

    Ok(finish(state, phases, tail_iterations, cluster, diagnostics))
}

/// One phase of the main loop (lines (a)–(e) of the pseudocode). Returns
/// the number of `Central-Rand` iterations covered (simulated + skipped).
fn run_phase(
    state: &mut SimState<'_>,
    cluster: &mut Cluster,
    diagnostics: &mut Option<SimDiagnostics>,
    m: usize,
    plan: &PhasePlan,
    phase_index: usize,
) -> Result<usize, CoreError> {
    let g = state.g;
    let n = g.num_vertices();
    let eps = state.eps;
    let t_min_threshold = state.thresholds.min_threshold(eps);

    // Line (b): y_old — weight of already-frozen edges of G[V'].
    let mut y_old = vec![0.0f64; n];
    // Active edges of G[V'] (line (a)).
    let mut active_edges: Vec<(u32, u32)> = Vec::new();
    for e in g.edges() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if state.removed[u] || state.removed[v] {
            continue;
        }
        if state.is_active_vertex(u) && state.is_active_vertex(v) {
            active_edges.push((e.u(), e.v()));
        } else {
            let w = state.edge_weight_of(e);
            y_old[u] += w;
            y_old[v] += w;
        }
    }

    // Line (d): random vertex partition of V' (all non-removed vertices).
    let v_prime: Vec<VertexId> = (0..n as u32)
        .filter(|&v| !state.removed[v as usize])
        .collect();
    let part_seed = hash2(state.seed_base(), phase_index as u64);
    let machine_of = |v: u32| -> usize { (hash2(part_seed, v as u64) % m as u64) as usize };
    let parts = random_vertex_partition(&v_prime, m, part_seed);

    // Local induced subgraphs: adjacency among same-machine active edges.
    let mut local_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut local_edge_count = vec![0usize; m];
    for &(u, v) in &active_edges {
        let mu = machine_of(u);
        if mu == machine_of(v) {
            local_adj[u as usize].push(v);
            local_adj[v as usize].push(u);
            local_edge_count[mu] += 1;
        }
    }

    // One MPC round: every machine receives its vertices + induced edges.
    // This is where the paper's O(n)-memory claim (Lemma 4.7) is enforced.
    cluster.round(|r| {
        for (i, part) in parts.iter().enumerate() {
            r.receive(i, part.len() + 2 * local_edge_count[i])?;
        }
        Ok(())
    })?;

    // Local active degree (within the machine) per vertex.
    let mut local_deg: Vec<usize> = local_adj.iter().map(Vec::len).collect();

    // Coupled Central-Rand reference for diagnostics: starts from the same
    // state (Section 4.4.3: "we assume that at the beginning of each phase
    // MPC-Simulation and Central-Rand start from the same fractional
    // matching").
    let mut ref_freeze = diagnostics.as_ref().map(|_| state.freeze.clone());
    let compared: usize = v_prime
        .iter()
        .filter(|&&v| state.is_active_vertex(v as usize))
        .count();

    // Active local vertices, for the per-iteration scans.
    let active_list: Vec<VertexId> = v_prime
        .iter()
        .copied()
        .filter(|&v| state.is_active_vertex(v as usize))
        .collect();

    let t0 = state.t;
    // For the growth plan, the weight target is set lazily at the *first
    // possible action*: iterations in which no estimate can reach the
    // minimum threshold are exact no-ops, so the pre-action ramp is skipped
    // without consuming the phase's action window (and without extra
    // rounds — it happens inside the machines).
    let (mut iterations_left, mut w_target): (usize, Option<f64>) = match plan {
        PhasePlan::FixedIterations(i) => (*i, None),
        PhasePlan::GrowthWithSkip(_) => (usize::MAX, None),
    };

    // Reference step: freeze by *exact* loads with the same thresholds.
    let ref_step = |state: &SimState<'_>, rf: &mut Vec<u32>, tt: u32| -> Vec<f64> {
        let mut y = vec![0.0f64; n];
        for e in g.edges() {
            let (u, v) = (e.u() as usize, e.v() as usize);
            if state.removed[u] || state.removed[v] {
                continue;
            }
            let frozen_at = rf[u].min(rf[v]).min(tt);
            let w = state.w0 * state.growth.powi(frozen_at as i32);
            y[u] += w;
            y[v] += w;
        }
        let mut freezes = Vec::new();
        for &v in &v_prime {
            let vu = v as usize;
            if rf[vu] == NEVER_FROZEN && y[vu] >= state.thresholds.threshold(eps, v, tt) {
                freezes.push(vu);
            }
        }
        for v in freezes {
            rf[v] = tt;
        }
        y
    };

    loop {
        if iterations_left == 0 {
            break;
        }
        if let Some(target) = w_target {
            if state.w_t() >= target {
                break;
            }
        }
        let w_t = state.w_t();

        // Can anything freeze this iteration? The minimum admissible
        // threshold is 1-4ε, so iterations where every estimate is below
        // it are provably no-ops and can be fast-forwarded (Practical
        // plan; the Paper plan simulates them literally but they cost no
        // extra MPC rounds either way).
        // Per-machine estimate scan: each chunk reports (local max ŷ,
        // local min skip); `f64::max` / `u32::min` combine to the same
        // values regardless of chunk interleaving, so the result is
        // identical under any executor.
        let (max_y_hat, min_skip) = {
            let st = &*state;
            st.exec
                .run_chunked(active_list.len(), PAR_CHUNK, |range| {
                    let mut max_y = 0.0f64;
                    let mut skip = u32::MAX;
                    for &v in &active_list[range] {
                        let vu = v as usize;
                        if !st.is_active_vertex(vu) {
                            continue;
                        }
                        let local_part = m as f64 * w_t * local_deg[vu] as f64;
                        let y_hat = local_part + y_old[vu];
                        if y_hat > max_y {
                            max_y = y_hat;
                        }
                        // Iterations until this vertex's estimate could
                        // reach 1-4ε.
                        if local_deg[vu] > 0 {
                            let need = t_min_threshold - y_old[vu];
                            if need > 0.0 && local_part > 0.0 {
                                let k = ((need / local_part).ln() / st.growth.ln()).ceil().max(1.0);
                                skip = skip.min(k as u32);
                            }
                        }
                    }
                    (max_y, skip)
                })
                .into_iter()
                .fold((0.0f64, u32::MAX), |(my, ms), (cy, cs)| {
                    (my.max(cy), ms.min(cs))
                })
        };

        if max_y_hat < t_min_threshold {
            // Fast-forward: no freeze possible this iteration.
            if let PhasePlan::GrowthWithSkip(factor) = plan {
                if min_skip == u32::MAX {
                    // No vertex can ever act locally this phase (all local
                    // degrees zero): cover one growth window and stop.
                    let target = w_target.unwrap_or(w_t * factor);
                    let k = ((target / w_t).ln() / state.growth.ln()).ceil().max(1.0) as u32;
                    state.t += k;
                    break;
                }
                if diagnostics.is_none() {
                    let mut k = min_skip.max(1);
                    if let Some(target) = w_target {
                        // Do not overshoot an already-started action window.
                        let to_target = ((target / w_t).ln() / state.growth.ln()).ceil().max(1.0);
                        k = k.min(to_target as u32);
                    }
                    state.t += k;
                    continue;
                }
            }
            // Diagnostics (or the Paper plan) advance one iteration at a
            // time so the coupled reference observes every iteration.
            if let Some(rf) = ref_freeze.as_mut() {
                ref_step(state, rf, state.t);
            }
            state.t += 1;
            iterations_left = iterations_left.saturating_sub(1);
            continue;
        }

        // First possible action: open the phase's growth window.
        if let PhasePlan::GrowthWithSkip(factor) = plan {
            if w_target.is_none() {
                w_target = Some(w_t * factor);
            }
        }

        let tt = state.t;

        // Reference exact loads at iteration tt (for diagnostics only);
        // applying the reference freezes *after* measuring the drift uses
        // the same pre-iteration snapshot the estimate uses.
        let ref_y = ref_freeze.as_ref().map(|rf| {
            let mut y = vec![0.0f64; n];
            for e in g.edges() {
                let (u, v) = (e.u() as usize, e.v() as usize);
                if state.removed[u] || state.removed[v] {
                    continue;
                }
                let frozen_at = rf[u].min(rf[v]).min(tt);
                let w = state.w0 * state.growth.powi(frozen_at as i32);
                y[u] += w;
                y[v] += w;
            }
            y
        });

        // Line (e)(A): simultaneous freeze decisions from the snapshot.
        // Without diagnostics this is a pure per-machine filter over the
        // pre-iteration state — chunked, flattened in chunk order, so the
        // freeze set is identical under any executor. The diagnostics path
        // accumulates into `&mut diag` and stays sequential (it computes
        // the very same decisions).
        let to_freeze: Vec<u32> = if diagnostics.is_none() {
            let st = &*state;
            st.exec
                .run_chunked(active_list.len(), PAR_CHUNK, |range| {
                    active_list[range]
                        .iter()
                        .copied()
                        .filter(|&v| {
                            let vu = v as usize;
                            st.is_active_vertex(vu)
                                && m as f64 * w_t * local_deg[vu] as f64 + y_old[vu]
                                    >= st.thresholds.threshold(eps, v, tt)
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
        } else {
            let mut to_freeze = Vec::new();
            for &v in &active_list {
                let vu = v as usize;
                if !state.is_active_vertex(vu) {
                    continue;
                }
                let y_hat = m as f64 * w_t * local_deg[vu] as f64 + y_old[vu];
                if let (Some(diag), Some(ref_y), Some(rf)) =
                    (diagnostics.as_mut(), ref_y.as_ref(), ref_freeze.as_ref())
                {
                    if rf[vu] == NEVER_FROZEN {
                        let err = (ref_y[vu] - y_hat).abs();
                        if err > diag.max_estimate_error {
                            diag.max_estimate_error = err;
                        }
                    }
                }
                if y_hat >= state.thresholds.threshold(eps, v, tt) {
                    to_freeze.push(v);
                }
            }
            to_freeze
        };
        for v in to_freeze {
            state.freeze[v as usize] = tt;
            // Local edges to v become inactive.
            for &w in &local_adj[v as usize] {
                local_deg[w as usize] = local_deg[w as usize].saturating_sub(1);
            }
            local_deg[v as usize] = 0;
        }

        if let Some(rf) = ref_freeze.as_mut() {
            ref_step(state, rf, tt);
        }

        state.t = tt + 1;
        iterations_left = iterations_left.saturating_sub(1);
    }

    // Diagnostics: a vertex is bad if it is frozen in one process and not
    // the other at the end of the phase (Definition 4.9).
    if let (Some(diag), Some(rf)) = (diagnostics.as_mut(), ref_freeze.as_ref()) {
        let bad = v_prime
            .iter()
            .filter(|&&v| {
                let vu = v as usize;
                (state.freeze[vu] == NEVER_FROZEN) != (rf[vu] == NEVER_FROZEN)
            })
            .count();
        diag.bad_vertices += bad;
        diag.compared_vertices += compared;
    }

    // Under the adaptive growth plan, machines must agree on the phase's
    // iteration horizon (the paper's fixed `I` makes this implicit; the
    // first-action-adaptive window needs one min-aggregation round in
    // which every machine reports its earliest possible freeze
    // iteration — one word each).
    if matches!(plan, PhasePlan::GrowthWithSkip(_)) {
        cluster.charge_rounds(1, 1)?;
    }

    // Reconciliation round (lines (f)–(g) are O(1) rounds of bookkeeping).
    let update_words = v_prime
        .len()
        .div_ceil(cluster.config().num_machines())
        .max(1);
    cluster.charge_rounds(1, update_words.min(cluster.config().words_per_machine()))?;
    Ok((state.t - t0) as usize)
}

/// Assembles the outcome from the final state.
fn finish(
    state: SimState<'_>,
    phases: usize,
    tail_iterations: usize,
    cluster: Cluster,
    diagnostics: Option<SimDiagnostics>,
) -> MpcMatchingOutcome {
    let g = state.g;
    let n = g.num_vertices();
    let x: Vec<f64> = g.edges().iter().map(|e| state.edge_weight_of(e)).collect();
    let fractional = FractionalMatching::new(g, x)
        .expect("MPC-Simulation maintains feasibility via removal + exact tail");

    let in_cover: Vec<bool> = (0..n)
        .map(|v| state.removed[v] || state.freeze[v] != NEVER_FROZEN)
        .collect();
    let cover = VertexCover::from_mask_unchecked(in_cover.clone());

    let y = fractional.vertex_weights(g);
    let heavy_certificate: Vec<VertexId> = (0..n as u32)
        .filter(|&v| in_cover[v as usize] && !state.removed[v as usize])
        .filter(|&v| y[v as usize] >= 1.0 - 5.0 * state.eps.get() - 1e-9)
        .collect();

    MpcMatchingOutcome {
        fractional,
        cover,
        heavy_certificate,
        phases,
        iterations: state.t as usize,
        tail_iterations,
        removed: state.removed,
        freeze_iteration: state.freeze,
        trace: cluster.execution_trace().clone(),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::{generators, matching, Graph};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn cfg(seed: u64) -> MpcMatchingConfig {
        MpcMatchingConfig::new(eps(0.1), seed)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(10);
        let out = mpc_simulation(&g, &cfg(1)).unwrap();
        assert_eq!(out.phases, 0);
        assert_eq!(out.cover.len(), 0);
        assert_eq!(out.fractional.weight(), 0.0);
    }

    #[test]
    fn cover_is_valid_on_many_graphs() {
        for seed in 0..6u64 {
            for g in [
                generators::gnp(200, 0.05, seed).unwrap(),
                generators::gnp(200, 0.3, seed).unwrap(),
                generators::power_law(200, 2.5, 10.0, seed).unwrap(),
                generators::complete(40),
                generators::star(100),
                generators::cycle(101),
            ] {
                let out = mpc_simulation(&g, &cfg(seed)).unwrap();
                assert!(out.cover.covers(&g), "seed {seed}");
                assert!(out.fractional.is_feasible(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn approximation_quality_on_random_graphs() {
        // Lemma 4.2: (2 + 50ε)-approximation. We check the measurable dual
        // bounds: fractional weight >= |M*|/(2+50ε), |C| <= (2+50ε)·VC*
        // relaxed via VC* <= 2|M*|.
        let e = 0.1;
        let factor = 2.0 + 50.0 * e;
        for seed in 0..5u64 {
            for g in [
                generators::gnp(150, 0.08, seed).unwrap(),
                generators::gnp(256, 0.5, seed).unwrap(), // exercises phases
            ] {
                let out = mpc_simulation(&g, &cfg(seed)).unwrap();
                let mm = matching::blossom(&g).len() as f64;
                assert!(
                    out.fractional.weight() >= mm / factor,
                    "seed {seed}: weight {} < {} (|M*|={mm})",
                    out.fractional.weight(),
                    mm / factor
                );
                assert!(out.cover.len() as f64 >= mm, "cover below matching LB");
                assert!(
                    (out.cover.len() as f64) <= factor * 2.0 * mm.max(1.0),
                    "seed {seed}: cover {} too large vs |M*| {mm}",
                    out.cover.len()
                );
            }
        }
    }

    #[test]
    fn phases_executed_on_dense_instance() {
        // n = 2048, p = 0.15: max active degree ~340 exceeds
        // d_min = log² n = 121, so the phase loop must actually run.
        let g = generators::gnp(2048, 0.15, 3).unwrap();
        let out = mpc_simulation(&g, &cfg(3)).unwrap();
        assert!(
            out.phases >= 1,
            "expected at least one phase, got {}",
            out.phases
        );
        assert!(out.trace.rounds() > 0);
        assert!(out.cover.covers(&g));
        assert!(out.fractional.is_feasible(&g));
    }

    #[test]
    fn paper_schedule_degenerates_to_direct_simulation() {
        // log²⁰(n) >> n at this size: zero phases, pure tail.
        let g = generators::gnp(300, 0.05, 1).unwrap();
        let mut c = cfg(1);
        c.schedule = PhaseSchedule::Paper;
        let out = mpc_simulation(&g, &c).unwrap();
        assert_eq!(out.phases, 0);
        assert!(out.tail_iterations > 0);
        assert!(out.cover.covers(&g));
    }

    #[test]
    fn memory_budget_violation_reported() {
        // A dense graph with a starved memory budget must fail loudly.
        let g = generators::gnp(512, 0.5, 2).unwrap();
        let mut c = cfg(2);
        c.space_factor = 0.05; // ~26 words per machine: absurdly small
        let err = mpc_simulation(&g, &c).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Mpc(mmvc_mpc::MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn heavy_certificate_is_heavy_and_large() {
        // Dense enough to run phases (deg ~120 > d_min = 68).
        let g = generators::gnp(300, 0.4, 7).unwrap();
        let out = mpc_simulation(&g, &cfg(7)).unwrap();
        assert!(out.phases >= 1);
        let y = out.fractional.vertex_weights(&g);
        for &v in &out.heavy_certificate {
            assert!(y[v as usize] >= 1.0 - 5.0 * 0.1 - 1e-6);
            assert!(out.cover.contains(v));
        }
        // Lemma 4.2: at least |C|/3 of the cover is heavy.
        assert!(
            3 * out.heavy_certificate.len() >= out.cover.len(),
            "heavy {} vs cover {}",
            out.heavy_certificate.len(),
            out.cover.len()
        );
    }

    #[test]
    fn diagnostics_reports_small_bad_fraction() {
        let g = generators::gnp(1024, 0.2, 11).unwrap();
        let mut c = cfg(11);
        c.diagnostics = true;
        let out = mpc_simulation(&g, &c).unwrap();
        let diag = out.diagnostics.expect("diagnostics requested");
        assert!(diag.compared_vertices > 0);
        // The estimate noise at n=1024 (d ≈ 205) is ~0.7·d^(-1/4) ≈ 0.18,
        // comparable to the 2ε = 0.2 threshold window, so transient
        // divergence is expected at this scale; experiment E8 shows the
        // fraction shrinking as n grows. This is a regression bound, not
        // the asymptotic claim.
        assert!(
            diag.bad_fraction() < 0.4,
            "bad fraction {} unexpectedly high",
            diag.bad_fraction()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::gnp(300, 0.05, 5).unwrap();
        let a = mpc_simulation(&g, &cfg(9)).unwrap();
        let b = mpc_simulation(&g, &cfg(9)).unwrap();
        assert_eq!(a.freeze_iteration, b.freeze_iteration);
        assert_eq!(a.fractional, b.fractional);
        let c = mpc_simulation(&g, &cfg(10)).unwrap();
        assert_ne!(a.freeze_iteration, c.freeze_iteration);
    }

    #[test]
    fn diagnostics_do_not_change_the_outcome() {
        // Fast-forwarding is exact: running with diagnostics (which
        // simulates every iteration literally) must give identical results.
        let g = generators::gnp(512, 0.3, 13).unwrap();
        let plain = mpc_simulation(&g, &cfg(13)).unwrap();
        let mut c = cfg(13);
        c.diagnostics = true;
        let with_diag = mpc_simulation(&g, &c).unwrap();
        assert_eq!(plain.freeze_iteration, with_diag.freeze_iteration);
        assert_eq!(plain.fractional, with_diag.fractional);
        assert_eq!(plain.phases, with_diag.phases);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(4);
        let mut c = cfg(1);
        c.space_factor = 0.0;
        assert!(matches!(
            mpc_simulation(&g, &c),
            Err(CoreError::InvalidParameter {
                name: "space_factor",
                ..
            })
        ));
    }

    #[test]
    fn removed_vertices_edges_carry_zero_weight() {
        let g = generators::gnp(600, 0.3, 13).unwrap();
        let out = mpc_simulation(&g, &cfg(13)).unwrap();
        for (i, e) in g.edges().iter().enumerate() {
            if out.removed[e.u() as usize] || out.removed[e.v() as usize] {
                assert_eq!(out.fractional.edge_weight(i), 0.0);
            }
        }
    }

    #[test]
    fn sublinear_memory_regime_works() {
        // §1.3 remark: O(n/polylog) memory per machine still works. With
        // reduction 4, each machine holds ~2n words and phases use 2·√d
        // machines.
        let g = generators::gnp(1024, 0.2, 23).unwrap();
        let cfg = MpcMatchingConfig::sublinear(eps(0.1), 23, 4.0);
        let out = mpc_simulation(&g, &cfg).unwrap();
        assert!(out.cover.covers(&g));
        assert!(out.fractional.is_feasible(&g));
        assert!(
            out.trace.max_load_words() <= (8.0f64 / 4.0 * 1024.0).ceil() as usize,
            "sublinear budget respected: {}",
            out.trace.max_load_words()
        );
    }

    #[test]
    #[should_panic(expected = "memory reduction factor")]
    fn sublinear_rejects_bad_reduction() {
        let _ = MpcMatchingConfig::sublinear(eps(0.1), 0, 0.5);
    }

    #[test]
    fn few_removals_under_practical_schedule() {
        // Removal (line (i)) is the escape hatch for estimate failures; the
        // quantum-bounded schedule should keep it rare.
        let g = generators::gnp(1024, 0.2, 17).unwrap();
        let out = mpc_simulation(&g, &cfg(17)).unwrap();
        let removed = out.removed.iter().filter(|&&r| r).count();
        // The estimate noise at this scale is ~0.7·d^(-1/4) ≈ 0.18 per
        // window; with exact reconciliation every ~1.5x weight growth, the
        // removal escape hatch should stay well under 15%.
        assert!(
            removed as f64 / 1024.0 <= 0.15,
            "{} of 1024 vertices removed — estimates too coarse",
            removed
        );
    }
}
