//! Fractional matchings: edge weights `x_e ∈ [0, 1]` with vertex loads
//! `y_v = Σ_{e ∋ v} x_e ≤ 1`.
//!
//! The paper's matching/vertex-cover pipeline (Section 4) first constructs
//! a *fractional* matching within `(2+ε)` of the maximum matching, then
//! rounds it (Section 5). This module provides the validated container both
//! stages share.

use mmvc_graph::Graph;

/// Tolerance for floating-point feasibility checks.
const FEASIBILITY_TOL: f64 = 1e-9;

/// A fractional matching over the canonical edge list of a graph.
///
/// `x[i]` is the weight of `graph.edges()[i]`. Feasibility (`y_v ≤ 1`) is
/// checked at construction.
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::FractionalMatching;
/// use mmvc_graph::generators;
///
/// let g = generators::path(3); // edges {0,1}, {1,2}
/// let fm = FractionalMatching::new(&g, vec![0.5, 0.5]).unwrap();
/// assert_eq!(fm.weight(), 1.0);
/// assert_eq!(fm.vertex_weight(&g, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalMatching {
    x: Vec<f64>,
}

impl FractionalMatching {
    /// Wraps per-edge weights, validating `0 ≤ x_e` and `y_v ≤ 1 + tol`.
    ///
    /// Returns `None` if the length mismatches the edge list, any weight is
    /// negative or non-finite, or some vertex load exceeds 1.
    pub fn new(g: &Graph, x: Vec<f64>) -> Option<Self> {
        if x.len() != g.num_edges() {
            return None;
        }
        if x.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return None;
        }
        let fm = FractionalMatching { x };
        if !fm.is_feasible(g) {
            return None;
        }
        Some(fm)
    }

    /// The all-zero fractional matching.
    pub fn zero(g: &Graph) -> Self {
        FractionalMatching {
            x: vec![0.0; g.num_edges()],
        }
    }

    /// Per-edge weights, parallel to `g.edges()`.
    pub fn edge_weights(&self) -> &[f64] {
        &self.x
    }

    /// Weight of edge index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edge_weight(&self, i: usize) -> f64 {
        self.x[i]
    }

    /// Total weight `Σ_e x_e` — the quantity within `(2+ε)` of `|M*|`
    /// (Lemma 4.2).
    pub fn weight(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Vertex load `y_v = Σ_{e ∋ v} x_e`.
    ///
    /// `O(deg v · log m)` due to edge-index lookups; for bulk queries use
    /// [`vertex_weights`](Self::vertex_weights).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `g`.
    pub fn vertex_weight(&self, g: &Graph, v: mmvc_graph::VertexId) -> f64 {
        self.vertex_weights(g)[v as usize]
    }

    /// All vertex loads `y` in one `O(E)` pass.
    pub fn vertex_weights(&self, g: &Graph) -> Vec<f64> {
        let mut y = vec![0.0; g.num_vertices()];
        for (i, e) in g.edges().iter().enumerate() {
            y[e.u() as usize] += self.x[i];
            y[e.v() as usize] += self.x[i];
        }
        y
    }

    /// Checks feasibility: all loads `y_v ≤ 1` (within tolerance).
    pub fn is_feasible(&self, g: &Graph) -> bool {
        self.vertex_weights(g)
            .iter()
            .all(|&y| y <= 1.0 + FEASIBILITY_TOL)
    }

    /// The vertices with load at least `1 − beta` — the set `C̃` handed to
    /// the Lemma 5.1 rounding procedure.
    pub fn heavy_vertices(&self, g: &Graph, beta: f64) -> Vec<mmvc_graph::VertexId> {
        self.vertex_weights(g)
            .iter()
            .enumerate()
            .filter_map(|(v, &y)| (y >= 1.0 - beta - FEASIBILITY_TOL).then_some(v as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    #[test]
    fn validates_length_and_signs() {
        let g = generators::path(3);
        assert!(FractionalMatching::new(&g, vec![0.5]).is_none());
        assert!(FractionalMatching::new(&g, vec![0.5, -0.1]).is_none());
        assert!(FractionalMatching::new(&g, vec![0.5, f64::NAN]).is_none());
        assert!(FractionalMatching::new(&g, vec![0.5, 0.5]).is_some());
    }

    #[test]
    fn validates_vertex_loads() {
        let g = generators::path(3); // middle vertex 1 on both edges
        assert!(
            FractionalMatching::new(&g, vec![0.7, 0.7]).is_none(),
            "y_1 = 1.4 > 1"
        );
        assert!(FractionalMatching::new(&g, vec![1.0, 0.0]).is_some());
    }

    #[test]
    fn weights_and_loads() {
        let g = generators::star(4); // center 0, leaves 1..3
        let fm = FractionalMatching::new(&g, vec![0.25, 0.25, 0.5]).unwrap();
        assert!((fm.weight() - 1.0).abs() < 1e-12);
        assert!((fm.vertex_weight(&g, 0) - 1.0).abs() < 1e-12);
        assert!((fm.vertex_weight(&g, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heavy_vertices_threshold() {
        let g = generators::path(3);
        let fm = FractionalMatching::new(&g, vec![0.5, 0.45]).unwrap();
        // y = [0.5, 0.95, 0.45]
        assert_eq!(fm.heavy_vertices(&g, 0.1), vec![1]);
        assert_eq!(fm.heavy_vertices(&g, 0.5).len(), 2);
        assert_eq!(fm.heavy_vertices(&g, 0.6).len(), 3);
    }

    #[test]
    fn zero_matching() {
        let g = generators::cycle(5);
        let fm = FractionalMatching::zero(&g);
        assert_eq!(fm.weight(), 0.0);
        assert!(fm.is_feasible(&g));
        assert!(fm.heavy_vertices(&g, 0.5).is_empty());
    }

    #[test]
    fn integral_matching_is_feasible_fractional() {
        let g = generators::cycle(6);
        // Alternate edges 0-1, 2-3, 4-5 -> perfect matching as 0/1 vector.
        let x: Vec<f64> = g
            .edges()
            .iter()
            .map(|e| {
                if e.u() % 2 == 0 && e.v() == e.u() + 1 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let fm = FractionalMatching::new(&g, x).unwrap();
        assert_eq!(fm.weight(), 3.0);
    }
}
