//! Integral `(2+ε)`-approximate maximum matching (paper, Theorem 1.2).
//!
//! The proof of Theorem 1.2 composes the pieces of Sections 4 and 5 into
//! the iterated algorithm `A`:
//!
//! 1. run `MPC-Simulation` on the current graph to get a fractional
//!    matching `x` and the heavy-vertex set `C̃` (weight ≥ `1 − 5ε`);
//! 2. round `x` with the Lemma 5.1 procedure, extracting an integral
//!    matching of size `Ω(|C̃|)`;
//! 3. remove matched vertices and repeat.
//!
//! Each execution of `A` captures at least a `1/150` fraction of the
//! residual maximum matching, so `log_{150/149}(1/ε)` executions leave at
//! most an `ε` fraction unmatched. Separately, the Section 4.4.5 fallback
//! (LMSV filtering) handles graphs whose maximum matching is tiny; the
//! larger of the two results is returned.

use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::filtering::{filtering_maximal_matching, FilteringConfig};
use crate::matching::fractional::FractionalMatching;
use crate::matching::mpc_sim::{mpc_simulation, MpcMatchingConfig, MpcMatchingOutcome};
use crate::matching::rounding::round_fractional;
use mmvc_graph::matching::Matching;
use mmvc_graph::rng::hash2;
use mmvc_graph::vertex_cover::VertexCover;
use mmvc_graph::Graph;

/// Configuration for [`integral_matching`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralMatchingConfig {
    /// The MPC-Simulation configuration used by every extraction round.
    pub sim: MpcMatchingConfig,
    /// Upper bound on extraction iterations; `None` uses
    /// `min(24, ceil(log_{150/149}(1/ε)))` — extraction exits early anyway
    /// once the residual fractional weight certifies an `ε`-small
    /// remainder, and the leftover is absorbed by a maximal matching of
    /// the (by then small) residual graph.
    pub max_extractions: Option<usize>,
}

impl IntegralMatchingConfig {
    /// Default configuration from `(ε, seed)`.
    pub fn new(eps: Epsilon, seed: u64) -> Self {
        IntegralMatchingConfig {
            sim: MpcMatchingConfig::new(eps, seed),
            max_extractions: None,
        }
    }
}

/// Output of [`integral_matching`].
#[derive(Debug, Clone)]
pub struct IntegralMatchingOutcome {
    /// The integral matching (Theorem 1.2: within `(2+ε)` of maximum).
    pub matching: Matching,
    /// The vertex cover from the first `MPC-Simulation` run on the full
    /// graph (Theorem 1.2: within `(2+ε)` of minimum).
    pub cover: VertexCover,
    /// Extraction iterations actually executed.
    pub extractions: usize,
    /// Total MPC rounds across all simulation runs, rounding steps (one
    /// round each), and the residual fallback.
    pub total_rounds: usize,
    /// Whether the Section 4.4.5 fallback (maximal matching on the
    /// residual graph) contributed edges to the returned matching.
    pub used_fallback: bool,
}

/// Restricts a fractional matching on `old` to the edge set of `new`
/// (same vertex id space, `new.edges() ⊆ old.edges()`).
fn restrict_fractional(old: &Graph, x: &FractionalMatching, new: &Graph) -> FractionalMatching {
    let mut old_edges = old.edges().iter().enumerate();
    let mut weights = Vec::with_capacity(new.num_edges());
    for e in new.edges() {
        // Both lists are sorted; advance the old-list cursor monotonically.
        let i = old_edges
            .by_ref()
            .find(|(_, oe)| *oe == e)
            .expect("new.edges() ⊆ old.edges()")
            .0;
        weights.push(x.edge_weight(i));
    }
    FractionalMatching::new(new, weights)
        .expect("restriction of a feasible fractional matching is feasible")
}

/// Computes an integral `(2+ε)`-approximate maximum matching and a
/// `(2+ε)`-approximate vertex cover (paper, Theorem 1.2).
///
/// # Errors
///
/// Propagates [`CoreError`] from the underlying simulation (typically
/// memory-budget violations under misconfigured space factors).
///
/// # Examples
///
/// ```
/// use mmvc_core::matching::{integral_matching, IntegralMatchingConfig};
/// use mmvc_core::Epsilon;
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(200, 0.08, 1)?;
/// let out = integral_matching(&g, &IntegralMatchingConfig::new(Epsilon::new(0.1)?, 7))?;
/// assert!(out.cover.covers(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn integral_matching(
    g: &Graph,
    config: &IntegralMatchingConfig,
) -> Result<IntegralMatchingOutcome, CoreError> {
    let eps = config.sim.eps;
    let seed = config.sim.seed;
    let n = g.num_vertices();

    // Paper iteration count: log_{150/149}(1/ε). In practice each
    // extraction captures far more than the guaranteed 1/150 of the
    // residual optimum, so a couple dozen iterations plus the residual
    // fallback always suffice.
    let paper_cap = ((1.0 / eps.get()).ln() / (150.0f64 / 149.0).ln()).ceil() as usize;
    let cap = config.max_extractions.unwrap_or(paper_cap.min(24)).max(1);

    let mut matching = Matching::empty(n);
    let mut cover: Option<VertexCover> = None;
    let mut total_rounds = 0usize;
    let mut extractions = 0usize;
    let mut current = g.clone();

    while extractions < cap {
        let mut sim_cfg = config.sim.clone();
        sim_cfg.seed = hash2(seed, extractions as u64);
        let out: MpcMatchingOutcome = mpc_simulation(&current, &sim_cfg)?;
        total_rounds += out.trace.rounds();
        if cover.is_none() {
            cover = Some(out.cover.clone());
        }

        // Early exit: the residual maximum matching is at most
        // (2+50ε)·W(x); once that certifies an ε-small remainder relative
        // to what we already hold, further extraction cannot change the
        // approximation factor.
        let residual_bound = (2.0 + 50.0 * eps.get()) * out.fractional.weight();
        if residual_bound <= 1.0 || residual_bound <= eps.get() * matching.len().max(1) as f64 {
            break;
        }

        // Lemma 5.1 rounding, iterated: re-rounding the same fractional
        // matching (restricted to still-unmatched vertices) costs one MPC
        // round per repetition — far cheaper than a fresh simulation — and
        // each repetition extracts a constant fraction of the surviving
        // heavy vertices. The first repetition is exactly the paper's
        // rounding step; the rest only improve the constant.
        extractions += 1;
        let mut x = out.fractional;
        let mut candidates = out.heavy_certificate;
        let beta = 5.0 * eps.get();
        for round_idx in 0..8u64 {
            if candidates.is_empty() {
                break;
            }
            let rounded = round_fractional(
                &current,
                &x,
                &candidates,
                hash2(seed ^ 0x5151, extractions as u64 * 64 + round_idx),
            )?;
            total_rounds += 1;
            if rounded.is_empty() {
                break;
            }
            matching.absorb(&rounded);

            // Restrict graph and fractional matching to unmatched vertices.
            let keep: Vec<bool> = (0..n as u32).map(|v| !matching.covers(v)).collect();
            let next = current.induced_subgraph_mask(&keep);
            x = restrict_fractional(&current, &x, &next);
            current = next;
            candidates = x.heavy_vertices(&current, beta);
        }
        if current.is_edgeless() {
            break;
        }
    }

    // Section 4.4.5 fallback: a maximal matching of the residual graph
    // (small by now — this is also the small-matching path the paper
    // dedicates §4.4.5 to). Absorbing it makes the result maximal, so the
    // classical factor-2 bound holds unconditionally on top of the
    // extraction guarantee.
    let fallback = filtering_maximal_matching(&current, &FilteringConfig::new(seed ^ 0xFA11))?;
    total_rounds += fallback.trace.rounds();
    let absorbed = matching.absorb(&fallback.matching);
    let used_fallback = absorbed > 0;
    debug_assert!(matching.is_maximal(g));

    let cover = cover.unwrap_or_else(|| {
        // cap >= 1 guarantees at least one simulation ran; this arm only
        // serves the defensive default for an empty loop.
        VertexCover::from_mask_unchecked(vec![false; n])
    });

    Ok(IntegralMatchingOutcome {
        matching,
        cover,
        extractions,
        total_rounds,
        used_fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::{generators, matching as gm};

    fn cfg(seed: u64) -> IntegralMatchingConfig {
        IntegralMatchingConfig::new(Epsilon::new(0.1).unwrap(), seed)
    }

    #[test]
    fn matching_is_valid() {
        for seed in 0..5u64 {
            let g = generators::gnp(150, 0.08, seed).unwrap();
            let out = integral_matching(&g, &cfg(seed)).unwrap();
            for e in out.matching.edges() {
                assert!(g.has_edge(e.u(), e.v()), "seed {seed}");
            }
        }
    }

    #[test]
    fn two_plus_eps_approximation() {
        // Theorem 1.2 guarantee, measured against the blossom optimum. The
        // theoretical factor is 2+ε; the fallback (maximal matching) alone
        // guarantees 2, so we assert the 2+ε bound outright.
        for seed in 0..6u64 {
            let g = generators::gnp(200, 0.07, seed).unwrap();
            let out = integral_matching(&g, &cfg(seed)).unwrap();
            let opt = gm::blossom(&g).len();
            assert!(
                ((2.0 + 0.1) * out.matching.len() as f64) >= opt as f64,
                "seed {seed}: matched {} vs optimum {opt}",
                out.matching.len()
            );
        }
    }

    #[test]
    fn cover_is_valid_and_bounded() {
        for seed in 0..4u64 {
            let g = generators::gnp(150, 0.1, seed).unwrap();
            let out = integral_matching(&g, &cfg(seed)).unwrap();
            assert!(out.cover.covers(&g), "seed {seed}");
            let opt = gm::blossom(&g).len() as f64;
            assert!(out.cover.len() as f64 <= (2.0 + 50.0 * 0.1) * 2.0 * opt.max(1.0));
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(10);
        let out = integral_matching(&g, &cfg(1)).unwrap();
        assert!(out.matching.is_empty());
        assert!(out.cover.is_empty());
    }

    #[test]
    fn perfect_matching_graph() {
        let g = generators::disjoint_edges(200);
        let out = integral_matching(&g, &cfg(3)).unwrap();
        // Each disjoint edge must be matched by either path (maximal
        // matching on disjoint edges is perfect).
        assert_eq!(out.matching.len(), 200);
    }

    #[test]
    fn extraction_cap_respected() {
        let g = generators::gnp(120, 0.1, 2).unwrap();
        let mut c = cfg(2);
        c.max_extractions = Some(2);
        let out = integral_matching(&g, &c).unwrap();
        assert!(out.extractions <= 2);
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(150, 0.1, 4).unwrap();
        let a = integral_matching(&g, &cfg(8)).unwrap();
        let b = integral_matching(&g, &cfg(8)).unwrap();
        assert_eq!(a.matching.edges(), b.matching.edges());
        assert_eq!(a.extractions, b.extractions);
    }

    use mmvc_graph::Graph;
}
