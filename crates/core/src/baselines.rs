//! Prior-work baselines the paper compares against (Section 1.2), with the
//! same round metering as the main algorithms, for the E7 experiment.

use mmvc_graph::mis::IndependentSet;
use mmvc_graph::rng::hash3;
use mmvc_graph::Graph;
use mmvc_substrate::Bitset;

/// Output of [`luby_mis`].
#[derive(Debug, Clone)]
pub struct LubyOutcome {
    /// The maximal independent set.
    pub mis: IndependentSet,
    /// Synchronous rounds executed — `O(log n)` w.h.p. \[Lub86\], the
    /// baseline the paper's `O(log log Δ)` algorithm improves on.
    pub rounds: usize,
}

/// Luby's classical MIS algorithm \[Lub86\]: per round, every live vertex
/// draws a random priority and joins the MIS if it beats all live
/// neighbors; MIS members and their neighbors are removed.
///
/// Each round is implementable in `O(1)` MPC rounds (local decisions +
/// one neighborhood exchange), so `rounds` is directly comparable with the
/// round counts of the Theorem 1.1 algorithm.
///
/// # Examples
///
/// ```
/// use mmvc_core::baselines::luby_mis;
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(300, 0.05, 1)?;
/// let out = luby_mis(&g, 7);
/// assert!(out.mis.is_maximal(&g));
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
pub fn luby_mis(g: &Graph, seed: u64) -> LubyOutcome {
    let n = g.num_vertices();
    // Word-packed masks: the per-round neighbor scans stream these.
    let mut in_mis = Bitset::new(n);
    let mut live = Bitset::filled(n);
    let mut rounds = 0usize;
    // Luby terminates in O(log n) rounds w.h.p.; the cap is a safety net.
    let cap = 8 * ((n.max(2) as f64).log2().ceil() as usize) + 16;

    loop {
        // Live vertices with no live neighbors join immediately.
        let mut remaining = 0usize;
        for v in 0..n as u32 {
            if !live.get(v as usize) {
                continue;
            }
            if g.neighbors(v).iter().all(|&u| !live.get(u as usize)) {
                in_mis.set(v as usize);
                live.clear(v as usize);
            } else {
                remaining += 1;
            }
        }
        if remaining == 0 || rounds >= cap {
            break;
        }

        // Random priorities; local minimum joins (ties broken by id —
        // hash collisions on 64 bits are negligible but handled).
        let priority = |v: u32| -> (u64, u32) { (hash3(seed, rounds as u64, v as u64), v) };
        let mut joins = Vec::new();
        for v in 0..n as u32 {
            if !live.get(v as usize) {
                continue;
            }
            let pv = priority(v);
            let is_min = g
                .neighbors(v)
                .iter()
                .all(|&u| !live.get(u as usize) || priority(u) > pv);
            if is_min {
                joins.push(v);
            }
        }
        for v in joins {
            in_mis.set(v as usize);
            live.clear(v as usize);
            for &u in g.neighbors(v) {
                live.clear(u as usize);
            }
        }
        rounds += 1;
    }

    let members: Vec<u32> = in_mis.iter_ones().map(|v| v as u32).collect();
    let mis = IndependentSet::new(g, members).expect("local minima are independent");
    debug_assert!(mis.is_maximal(g));
    LubyOutcome { mis, rounds }
}

/// Output of [`luby_maximal_matching`].
#[derive(Debug, Clone)]
pub struct LubyMatchingOutcome {
    /// The maximal matching.
    pub matching: mmvc_graph::matching::Matching,
    /// Rounds of the underlying MIS run on the line graph.
    pub rounds: usize,
}

/// The classical maximal matching via MIS on the line graph (paper,
/// introduction: "When this algorithm is applied to the line graph of
/// input graph G, it outputs a maximal matching of G").
///
/// A 2-approximation of maximum matching and, through its endpoints, a
/// 2-approximation of minimum vertex cover, in `O(log n)` rounds via
/// Luby.
///
/// Note the line graph can be much larger than `G` (`Σ deg²` edges), so
/// this baseline is also a memory cautionary tale — the reason the paper
/// works on `G` directly.
///
/// # Examples
///
/// ```
/// use mmvc_core::baselines::luby_maximal_matching;
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(100, 0.05, 1)?;
/// let out = luby_maximal_matching(&g, 7);
/// assert!(out.matching.is_maximal(&g));
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
pub fn luby_maximal_matching(g: &Graph, seed: u64) -> LubyMatchingOutcome {
    let line = g.line_graph();
    let mis = luby_mis(&line, seed);
    let mut matching = mmvc_graph::matching::Matching::empty(g.num_vertices());
    for &edge_index in mis.mis.members() {
        let e = g.edges().get(edge_index as usize);
        let added = matching.try_add(e.u(), e.v());
        debug_assert!(added, "independent line-graph vertices are disjoint edges");
    }
    debug_assert!(
        matching.is_maximal(g),
        "maximal IS in L(G) is a maximal matching"
    );
    LubyMatchingOutcome {
        matching,
        rounds: mis.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    #[test]
    fn maximal_independent_on_many_graphs() {
        for seed in 0..5u64 {
            for g in [
                generators::gnp(300, 0.05, seed).unwrap(),
                generators::complete(30),
                generators::cycle(41),
                generators::star(50),
                generators::grid(8, 9),
            ] {
                let out = luby_mis(&g, seed);
                assert!(out.mis.is_independent(&g), "seed {seed}");
                assert!(out.mis.is_maximal(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn edgeless_zero_rounds() {
        let g = mmvc_graph::Graph::empty(10);
        let out = luby_mis(&g, 0);
        assert_eq!(out.mis.len(), 10);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn complete_graph_one_round() {
        let out = luby_mis(&generators::complete(20), 1);
        assert_eq!(out.mis.len(), 1);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn rounds_logarithmic() {
        let g = generators::gnp(2000, 0.01, 2).unwrap();
        let out = luby_mis(&g, 2);
        assert!(out.rounds <= 30, "Luby took {} rounds", out.rounds);
        assert!(out.rounds >= 2);
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(200, 0.1, 3).unwrap();
        assert_eq!(luby_mis(&g, 5).mis.members(), luby_mis(&g, 5).mis.members());
        assert_eq!(luby_mis(&g, 5).rounds, luby_mis(&g, 5).rounds);
    }

    #[test]
    fn line_graph_matching_maximal_and_half_approx() {
        for seed in 0..4u64 {
            let g = generators::gnp(120, 0.08, seed).unwrap();
            let out = luby_maximal_matching(&g, seed);
            assert!(out.matching.is_maximal(&g), "seed {seed}");
            let opt = mmvc_graph::matching::blossom(&g).len();
            assert!(2 * out.matching.len() >= opt, "seed {seed}");
        }
    }

    #[test]
    fn line_graph_matching_on_structured_graphs() {
        let out = luby_maximal_matching(&generators::star(20), 1);
        assert_eq!(
            out.matching.len(),
            1,
            "star has a single maximal matching edge"
        );
        let out = luby_maximal_matching(&generators::disjoint_edges(7), 1);
        assert_eq!(out.matching.len(), 7);
        let out = luby_maximal_matching(&mmvc_graph::Graph::empty(5), 1);
        assert!(out.matching.is_empty());
    }
}
