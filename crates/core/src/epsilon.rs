//! The approximation parameter `ε`, validated at the boundary.

use crate::error::CoreError;

/// A validated approximation parameter `ε ∈ (0, 1/10]`.
///
/// The paper's approximation guarantees are stated for "any small constant
/// `ε > 0`"; the analysis of the `Central` algorithm (Lemma 4.1) assumes
/// `ε ≤ 1/10` and the `MPC-Simulation` analysis assumes `ε < 1/50` (with
/// the remark that larger inputs may simply be reduced). We validate the
/// Lemma 4.1 domain here; callers wanting the stricter analysis regime can
/// pass a smaller value.
///
/// # Examples
///
/// ```
/// use mmvc_core::Epsilon;
/// let eps = Epsilon::new(0.1)?;
/// assert_eq!(eps.get(), 0.1);
/// assert!(Epsilon::new(0.2).is_err());
/// # Ok::<(), mmvc_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Largest admissible value (`1/10`, from Lemma 4.1).
    pub const MAX: f64 = 0.1;

    /// Validates `ε ∈ (0, 1/10]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidEpsilon`] outside the domain.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if !value.is_finite() {
            return Err(CoreError::InvalidEpsilon {
                value,
                message: "must be finite",
            });
        }
        if value <= 0.0 {
            return Err(CoreError::InvalidEpsilon {
                value,
                message: "must be positive",
            });
        }
        if value > Self::MAX {
            return Err(CoreError::InvalidEpsilon {
                value,
                message: "must be at most 1/10 (Lemma 4.1 domain); reduce epsilon",
            });
        }
        Ok(Epsilon(value))
    }

    /// The raw value.
    pub fn get(&self) -> f64 {
        self.0
    }

    /// The per-iteration weight growth factor `1 / (1 − ε)`.
    pub fn growth_factor(&self) -> f64 {
        1.0 / (1.0 - self.0)
    }

    /// Number of iterations for an edge weight to grow from `from` to at
    /// least `to` under the growth factor: `ceil(log_{1/(1−ε)}(to/from))`.
    ///
    /// Returns 0 when `from >= to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is non-positive.
    pub fn iterations_to_grow(&self, from: f64, to: f64) -> usize {
        assert!(from > 0.0 && to > 0.0, "weights must be positive");
        if from >= to {
            return 0;
        }
        ((to / from).ln() / self.growth_factor().ln()).ceil() as usize
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_checks() {
        assert!(Epsilon::new(0.05).is_ok());
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(0.100001).is_err());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-0.1).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn growth_factor() {
        let e = Epsilon::new(0.1).unwrap();
        assert!((e.growth_factor() - 1.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn iterations_to_grow() {
        let e = Epsilon::new(0.1).unwrap();
        // From 1/n to ~1 with n = 1000: log_{1/0.9} 1000 ≈ 65.6 → 66.
        let it = e.iterations_to_grow(1.0 / 1000.0, 1.0);
        assert_eq!(it, 66);
        assert_eq!(e.iterations_to_grow(1.0, 0.5), 0);
        // Sanity: growing that many times really reaches the target.
        let grown = (1.0 / 1000.0) * e.growth_factor().powi(it as i32);
        assert!(grown >= 1.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn iterations_rejects_nonpositive() {
        Epsilon::new(0.1).unwrap().iterations_to_grow(0.0, 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Epsilon::new(0.05).unwrap().to_string(), "0.05");
    }
}
