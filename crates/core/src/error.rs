//! Error type for the algorithm crate.

use mmvc_clique::CliqueError;
use mmvc_graph::GraphError;
use mmvc_mpc::MpcError;
use mmvc_substrate::SubstrateError;
use std::error::Error;
use std::fmt;

/// Errors produced by the paper's algorithms.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// An `ε` parameter outside the supported domain.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
        /// Why it was rejected.
        message: &'static str,
    },
    /// An algorithm parameter outside its documented domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        message: String,
    },
    /// The underlying MPC simulation failed (typically a memory-budget
    /// violation — a *finding*, not a bug: the configuration was too small
    /// for the algorithm's guarantees to apply).
    Mpc(MpcError),
    /// The underlying CONGESTED-CLIQUE simulation failed.
    Clique(CliqueError),
    /// Graph construction failed.
    Graph(GraphError),
    /// An edge-list workload file could not be loaded (driver runs with
    /// [`RunSpec::graph_file`](crate::run::RunSpec::graph_file) set).
    GraphFile {
        /// The path that failed to load.
        path: String,
        /// The underlying read failure.
        source: mmvc_graph::io::ReadError,
    },
    /// The transport layer failed during a distributed run — a framing
    /// violation or a misbehaving party ([`SubstrateError::Net`] names
    /// the offending party and round).
    Substrate(SubstrateError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidEpsilon { value, message } => {
                write!(f, "invalid epsilon {value}: {message}")
            }
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::Mpc(e) => write!(f, "MPC simulation failed: {e}"),
            CoreError::Clique(e) => write!(f, "CONGESTED-CLIQUE simulation failed: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::GraphFile { path, source } => {
                write!(f, "cannot load graph file `{path}`: {source}")
            }
            CoreError::Substrate(e) => write!(f, "distributed run failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Mpc(e) => Some(e),
            CoreError::Clique(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::GraphFile { source, .. } => Some(source),
            CoreError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpcError> for CoreError {
    fn from(e: MpcError) -> Self {
        CoreError::Mpc(e)
    }
}

impl From<CliqueError> for CoreError {
    fn from(e: CliqueError) -> Self {
        CoreError::Clique(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SubstrateError> for CoreError {
    fn from(e: SubstrateError) -> Self {
        CoreError::Substrate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidEpsilon {
            value: 0.9,
            message: "too large",
        };
        assert!(e.to_string().contains("0.9"));
        assert!(e.source().is_none());

        let e: CoreError = MpcError::Substrate(mmvc_substrate::SubstrateError::RoundProtocol {
            substrate: "mpc",
            message: "x",
        })
        .into();
        assert!(e.to_string().contains("MPC"));
        assert!(e.source().is_some());

        let e: CoreError = CliqueError::Substrate(mmvc_substrate::SubstrateError::RoundProtocol {
            substrate: "congested-clique",
            message: "y",
        })
        .into();
        assert!(e.source().is_some());

        let e: CoreError = GraphError::SelfLoop { vertex: 1 }.into();
        assert!(e.to_string().contains("graph"));

        let e: CoreError = SubstrateError::Net {
            party: 3,
            round: 2,
            message: "connection reset".into(),
        }
        .into();
        let s = e.to_string();
        assert!(s.contains("party 3") && s.contains("round 2"));
        assert!(e.source().is_some());

        // Every variant (and every crate's error enum — the audit behind
        // this test) boxes uniformly as `dyn Error` with sources wired.
        let e = CoreError::GraphFile {
            path: "missing.txt".into(),
            source: mmvc_graph::io::ReadError::Parse {
                line: 3,
                content: "x y z".into(),
            },
        };
        assert!(e.to_string().contains("missing.txt"));
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.source().unwrap().to_string().contains("line 3"));
    }
}
