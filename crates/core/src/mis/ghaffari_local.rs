//! The sparsified MIS subroutine: Ghaffari's local MIS process.
//!
//! Theorem 2.1 of the paper (quoting \[Gha17\]) supplies an
//! `O(log log Δ)`-round CONGESTED-CLIQUE MIS for graphs of
//! polylogarithmic degree, used as the second stage of the Theorem 1.1
//! algorithm once the greedy rank-prefix phases have thinned the graph.
//!
//! **Substitution (recorded in DESIGN.md):** we implement the *local
//! process* underlying that result — Ghaffari's SODA'16 desire-level MIS
//! dynamics. Every vertex maintains a desire level `p_v` (initially
//! `1/2`); per round it marks itself with probability `p_v`, joins the MIS
//! if no neighbor is marked, and halves (resp. doubles, capped at `1/2`)
//! its desire level according to whether its *effective degree*
//! `Σ_{u ∈ N(v)} p_u` is at least 2. For Δ = polylog(n) the process
//! shatters the graph within `O(log Δ) = O(log log n)` rounds w.h.p.,
//! after which the paper's algorithms gather the `O(n)`-edge residue onto
//! one machine. Each round uses one exchange of marks with neighbors, so
//! it costs `O(1)` rounds in both MPC and CONGESTED-CLIQUE — the only
//! properties the paper needs from the black box.

use mmvc_graph::rng::hash3_unit;
use mmvc_graph::{Graph, VertexId};

/// Configuration for [`ghaffari_local_mis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalMisConfig {
    /// Seed for the per-round marking randomness.
    pub seed: u64,
    /// Maximum rounds to run (the callers use `O(log Δ)`).
    pub max_rounds: usize,
    /// Stop early once the number of edges among undecided vertices drops
    /// to this target (the "gather the rest onto one machine" threshold).
    pub target_edges: usize,
}

/// Output of [`ghaffari_local_mis`].
#[derive(Debug, Clone)]
pub struct LocalMisOutcome {
    /// Vertices that joined the MIS.
    pub in_mis: Vec<bool>,
    /// Vertices decided either way (in MIS, or removed as an MIS
    /// neighbor). Undecided vertices form the residual graph.
    pub decided: Vec<bool>,
    /// Rounds executed.
    pub rounds: usize,
    /// Edges among undecided vertices when the process stopped.
    pub residual_edges: usize,
}

/// Runs Ghaffari's desire-level local MIS process on the subgraph of `g`
/// induced by `active` (callers pass the not-yet-decided vertices).
///
/// Stops after `max_rounds` rounds or once the residual graph has at most
/// `target_edges` edges, whichever comes first. Vertices that join the MIS
/// and their neighbors are *decided*; the caller finishes the residue
/// (e.g. on a single machine).
///
/// # Panics
///
/// Panics if `active.len() != g.num_vertices()`.
pub fn ghaffari_local_mis(g: &Graph, active: &[bool], config: &LocalMisConfig) -> LocalMisOutcome {
    assert_eq!(active.len(), g.num_vertices(), "mask length must equal n");
    let n = g.num_vertices();
    let mut in_mis = vec![false; n];
    let mut decided: Vec<bool> = (0..n).map(|v| !active[v]).collect();
    // Desire levels, as exponents: p_v = 2^{-k_v}, k_v >= 1.
    let mut level = vec![1u32; n];

    let residual_edge_count = |decided: &[bool]| -> usize {
        g.edges()
            .iter()
            .filter(|e| !decided[e.u() as usize] && !decided[e.v() as usize])
            .count()
    };

    // Undecided vertices whose neighbors are all decided can always join;
    // sweep before, during, and after the marking rounds.
    let absorb_isolated = |in_mis: &mut Vec<bool>, decided: &mut Vec<bool>| {
        for v in 0..n as u32 {
            if !decided[v as usize] && g.neighbors(v).iter().all(|&u| decided[u as usize]) {
                in_mis[v as usize] = true;
                decided[v as usize] = true;
            }
        }
    };
    absorb_isolated(&mut in_mis, &mut decided);

    let mut rounds = 0usize;
    let mut residual_edges = residual_edge_count(&decided);
    while rounds < config.max_rounds && residual_edges > config.target_edges {
        // Mark each undecided vertex with probability p_v.
        let marked: Vec<bool> = (0..n)
            .map(|v| {
                !decided[v]
                    && hash3_unit(config.seed, rounds as u64, v as u64)
                        < 0.5f64.powi(level[v] as i32)
            })
            .collect();

        // A marked vertex with no marked undecided neighbor joins the MIS.
        let mut joins: Vec<VertexId> = Vec::new();
        for v in 0..n as u32 {
            if !marked[v as usize] || decided[v as usize] {
                continue;
            }
            let blocked = g
                .neighbors(v)
                .iter()
                .any(|&u| marked[u as usize] && !decided[u as usize]);
            if !blocked {
                joins.push(v);
            }
        }
        for v in joins {
            in_mis[v as usize] = true;
            decided[v as usize] = true;
            for &u in g.neighbors(v) {
                decided[u as usize] = true;
            }
        }

        absorb_isolated(&mut in_mis, &mut decided);

        // Desire-level update from effective degrees.
        let mut eff = vec![0.0f64; n];
        for e in g.edges() {
            let (u, v) = (e.u() as usize, e.v() as usize);
            if !decided[u] && !decided[v] {
                eff[u] += 0.5f64.powi(level[v] as i32);
                eff[v] += 0.5f64.powi(level[u] as i32);
            }
        }
        for v in 0..n {
            if decided[v] {
                continue;
            }
            if eff[v] >= 2.0 {
                level[v] = (level[v] + 1).min(60);
            } else {
                level[v] = level[v].saturating_sub(1).max(1);
            }
        }

        rounds += 1;
        residual_edges = residual_edge_count(&decided);
    }
    absorb_isolated(&mut in_mis, &mut decided);

    LocalMisOutcome {
        in_mis,
        decided,
        rounds,
        residual_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;
    use mmvc_graph::mis::IndependentSet;

    fn run_to_completion(g: &Graph, seed: u64) -> LocalMisOutcome {
        let cfg = LocalMisConfig {
            seed,
            max_rounds: 10_000,
            target_edges: 0,
        };
        let active = vec![true; g.num_vertices()];
        ghaffari_local_mis(g, &active, &cfg)
    }

    #[test]
    fn produces_independent_set() {
        for seed in 0..5u64 {
            let g = generators::gnp(200, 0.05, seed).unwrap();
            let out = run_to_completion(&g, seed);
            let members: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| out.in_mis[v as usize])
                .collect();
            let is = IndependentSet::new(&g, members).expect("must be independent");
            // With target_edges = 0 and generous rounds, everything decides;
            // undecided-free means the set is maximal.
            assert_eq!(out.residual_edges, 0);
            assert!(out.decided.iter().all(|&d| d));
            assert!(is.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn respects_active_mask() {
        let g = generators::complete(6);
        let mut active = vec![true; 6];
        active[0] = false;
        active[1] = false;
        let cfg = LocalMisConfig {
            seed: 1,
            max_rounds: 1000,
            target_edges: 0,
        };
        let out = ghaffari_local_mis(&g, &active, &cfg);
        assert!(
            !out.in_mis[0] && !out.in_mis[1],
            "inactive vertices never join"
        );
        // Exactly one of the 4 active vertices joins (clique).
        let joined = out.in_mis.iter().filter(|&&b| b).count();
        assert_eq!(joined, 1);
    }

    #[test]
    fn round_budget_respected() {
        let g = generators::gnp(300, 0.1, 2).unwrap();
        let cfg = LocalMisConfig {
            seed: 2,
            max_rounds: 3,
            target_edges: 0,
        };
        let out = ghaffari_local_mis(&g, &vec![true; 300], &cfg);
        assert!(out.rounds <= 3);
    }

    #[test]
    fn target_edges_early_exit() {
        let g = generators::gnp(300, 0.1, 3).unwrap();
        let target = g.num_edges() / 2;
        let cfg = LocalMisConfig {
            seed: 3,
            max_rounds: 10_000,
            target_edges: target,
        };
        let out = ghaffari_local_mis(&g, &vec![true; 300], &cfg);
        assert!(out.residual_edges <= target);
    }

    #[test]
    fn shatters_low_degree_graph_quickly() {
        // Δ = polylog: the process should decide almost everything within
        // O(log Δ) rounds — allow a generous constant.
        let g = generators::gnp(2000, 4.0 / 2000.0, 4).unwrap(); // avg deg 4
        let cfg = LocalMisConfig {
            seed: 4,
            max_rounds: 40,
            target_edges: 0,
        };
        let out = ghaffari_local_mis(&g, &vec![true; 2000], &cfg);
        let undecided = out.decided.iter().filter(|&&d| !d).count();
        assert!(
            undecided * 10 <= 2000,
            "only {undecided} of 2000 undecided expected fewer"
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Graph::empty(5);
        let out = run_to_completion(&g, 0);
        assert!(out.in_mis.iter().all(|&b| b), "all isolated vertices join");
        assert_eq!(out.rounds, 0, "no residual edges, loop never runs");
    }

    use mmvc_graph::Graph;

    #[test]
    fn deterministic() {
        let g = generators::gnp(150, 0.08, 5).unwrap();
        let a = run_to_completion(&g, 9);
        let b = run_to_completion(&g, 9);
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.rounds, b.rounds);
    }
}
