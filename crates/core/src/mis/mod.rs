//! Maximal independent set algorithms (paper, Section 3).
//!
//! * [`greedy_mpc_mis`] — Theorem 1.1 in the MPC model: the randomized
//!   greedy MIS simulated in `O(log log Δ)` rounds via rank prefixes.
//! * [`clique_mis`] — Theorem 1.1 in the CONGESTED-CLIQUE model.
//! * [`ghaffari_local_mis`] — the sparsified subroutine (Theorem 2.1
//!   substitute; see DESIGN.md).
//!
//! The sequential reference (`randomized_greedy_mis`) lives in
//! [`mmvc_graph::mis`]; the Luby baseline lives in [`crate::baselines`].

mod clique_mis;
mod ghaffari_local;
mod greedy_mpc;

pub use clique_mis::{clique_mis, CliqueMisConfig, CliqueMisOutcome};
pub use ghaffari_local::{ghaffari_local_mis, LocalMisConfig, LocalMisOutcome};
pub use greedy_mpc::{greedy_mpc_mis, GreedyMisConfig, GreedyMisOutcome, SparsifyThreshold};
