//! MIS in `O(log log Δ)` CONGESTED-CLIQUE rounds (paper, Theorem 1.1,
//! Section 3.2, "Simulation in CONGESTED-CLIQUE").
//!
//! The clique variant of the greedy simulation differs from the MPC one
//! only in how data moves:
//!
//! 1. **Agreeing on the ranking** — the lowest-ID player draws the
//!    permutation and tells every player its position (one word each, via
//!    Lenzen routing), then all players broadcast their positions to
//!    everyone (one all-to-all round).
//! 2. **Prefix collection** — players whose rank falls in the current
//!    prefix send their incident residual edges to a leader via Lenzen's
//!    routing scheme; since each prefix carries `O(n)` edges w.h.p.
//!    (Lemma 3.1), a constant number of routing invocations suffices — the
//!    simulator splits overweight instances into batches rather than
//!    assuming the constant.
//! 3. **Result dissemination** — the leader answers each player with one
//!    word ("in MIS or not"); MIS members then notify neighbors in one
//!    round.
//!
//! The sparsified tail charges one clique round per local-process round
//! (each is a single mark-exchange with neighbors), and the final `O(n)`
//! residue is routed to the leader.

use crate::error::CoreError;
use crate::mis::ghaffari_local::{ghaffari_local_mis, LocalMisConfig};
use crate::mis::greedy_mpc::SparsifyThreshold;
use crate::PAR_CHUNK;
use mmvc_clique::CliqueNetwork;
use mmvc_graph::mis::IndependentSet;
use mmvc_graph::rng::{hash2, invert_permutation, random_permutation};
use mmvc_graph::{Graph, VertexId};
use mmvc_substrate::{ExecutorConfig, Substrate};

/// Configuration for [`clique_mis`].
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueMisConfig {
    /// Seed for the ranking and the sparsified subroutine.
    pub seed: u64,
    /// Rank-prefix exponent `α` (paper: `3/4`).
    pub alpha: f64,
    /// Degree at which prefix phases hand off to the sparsified MIS.
    pub sparsify: SparsifyThreshold,
    /// How per-player local work executes (results are identical for any
    /// executor; see [`ExecutorConfig`]).
    pub executor: ExecutorConfig,
}

impl CliqueMisConfig {
    /// Default configuration (`α = 3/4`, practical handoff threshold,
    /// threaded executor).
    pub fn new(seed: u64) -> Self {
        CliqueMisConfig {
            seed,
            alpha: 0.75,
            sparsify: SparsifyThreshold::Practical,
            executor: ExecutorConfig::default(),
        }
    }
}

/// Output of [`clique_mis`].
#[derive(Debug, Clone)]
pub struct CliqueMisOutcome {
    /// The maximal independent set.
    pub mis: IndependentSet,
    /// Rank-prefix phases executed.
    pub prefix_phases: usize,
    /// Rounds used by the sparsified local subroutine.
    pub local_rounds: usize,
    /// The per-round substrate record; `trace.rounds()` is the total
    /// CONGESTED-CLIQUE round count (the Theorem 1.1 quantity) and
    /// `trace.max_load_words()` the largest number of words any player
    /// received in one round (bounded by `n · bandwidth` — the Lenzen
    /// precondition).
    pub trace: mmvc_substrate::ExecutionTrace,
}

/// Splits a routing instance into feasible chunks and routes each,
/// returning total rounds.
fn route_batched(
    net: &mut CliqueNetwork,
    messages: &[(usize, usize, usize)],
) -> Result<usize, CoreError> {
    let n = net.num_players();
    let capacity = n * net.words_per_pair();
    let mut rounds = 0usize;
    let mut batch: Vec<(usize, usize, usize)> = Vec::new();
    let mut out = vec![0usize; n];
    let mut inc = vec![0usize; n];
    for &(from, to, words) in messages {
        // A single message larger than capacity must be split.
        let mut sent = 0usize;
        while sent < words {
            let chunk = (words - sent).min(capacity);
            if out[from] + chunk > capacity || inc[to] + chunk > capacity {
                rounds += net.lenzen_route(&batch)?;
                batch.clear();
                out.fill(0);
                inc.fill(0);
            }
            out[from] += chunk;
            inc[to] += chunk;
            batch.push((from, to, chunk));
            sent += chunk;
        }
    }
    if !batch.is_empty() {
        rounds += net.lenzen_route(&batch)?;
    }
    Ok(rounds)
}

/// Computes an MIS with the Theorem 1.1 CONGESTED-CLIQUE algorithm.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for `alpha` outside `(0, 1)`.
/// * [`CoreError::Clique`] if the simulated network rejects an operation
///   (cannot happen for valid graphs thanks to batched routing).
///
/// # Examples
///
/// ```
/// use mmvc_core::mis::{clique_mis, CliqueMisConfig};
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(256, 0.1, 1)?;
/// let out = clique_mis(&g, &CliqueMisConfig::new(7))?;
/// assert!(out.mis.is_maximal(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn clique_mis(g: &Graph, config: &CliqueMisConfig) -> Result<CliqueMisOutcome, CoreError> {
    if !(0.0..1.0).contains(&config.alpha) || config.alpha <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "alpha",
            message: format!("must lie in (0, 1), got {}", config.alpha),
        });
    }
    let n = g.num_vertices();
    if n == 0 {
        return Ok(CliqueMisOutcome {
            mis: IndependentSet::empty(0),
            prefix_phases: 0,
            local_rounds: 0,
            trace: mmvc_substrate::ExecutionTrace::new(),
        });
    }
    let mut net = CliqueNetwork::new(n)?;
    net.set_telemetry(config.executor.telemetry());
    let exec = config.executor.clone();
    const LEADER: usize = 0;

    // Step 1: agree on the random order. Player 0 draws it and tells each
    // player its position (one word per player, one routing instance);
    // then everyone broadcasts its position (one all-to-all word).
    let perm = random_permutation(n, config.seed);
    let ranks = invert_permutation(&perm);
    let tell_positions: Vec<(usize, usize, usize)> = (0..n)
        .filter(|&p| p != LEADER)
        .map(|p| (LEADER, p, 1))
        .collect();
    route_batched(&mut net, &tell_positions)?;
    net.all_to_all(1)?;

    let mut in_mis = vec![false; n];
    let mut alive = vec![true; n];
    let delta = g.max_degree();
    let tau = config.sparsify.value(n);
    let mut prefix_phases = 0usize;

    if delta > tau {
        let delta_f = delta as f64;
        let mut exponent = config.alpha;
        let mut prev_rank = 0usize;
        loop {
            let rank_bound =
                (((n as f64) / delta_f.powf(exponent)).ceil() as usize).clamp(prev_rank + 1, n);
            let batch: Vec<VertexId> = (prev_rank..rank_bound)
                .map(|r| perm[r])
                .filter(|&v| alive[v as usize])
                .collect();

            if !batch.is_empty() {
                let in_batch = {
                    let mut mask = vec![false; n];
                    for &v in &batch {
                        mask[v as usize] = true;
                    }
                    mask
                };
                // Per-player batch construction: every batch player counts
                // its in-batch residual edges (2 words per edge) and
                // addresses them to the leader. Run over fixed vertex
                // chunks and flattened in chunk order, the message list is
                // identical under any executor.
                let messages: Vec<(usize, usize, usize)> = exec
                    .run_chunked(batch.len(), PAR_CHUNK, |range| {
                        batch[range]
                            .iter()
                            .filter_map(|&v| {
                                let edge_words = 2 * g
                                    .neighbors(v)
                                    .iter()
                                    .filter(|&&u| {
                                        in_batch[u as usize] && alive[u as usize] && u > v
                                    })
                                    .count();
                                (edge_words > 0).then_some((v as usize, LEADER, edge_words))
                            })
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                route_batched(&mut net, &messages)?;

                // Leader computes the greedy additions in rank order.
                let mut order = batch.clone();
                order.sort_unstable_by_key(|&v| ranks[v as usize]);
                for &v in &order {
                    if !alive[v as usize] {
                        continue;
                    }
                    if !g.neighbors(v).iter().any(|&u| in_mis[u as usize]) {
                        in_mis[v as usize] = true;
                    }
                }

                // Leader answers every player with one word (one routing
                // instance), then MIS members notify neighbors (one round).
                let answers: Vec<(usize, usize, usize)> = (0..n)
                    .filter(|&p| p != LEADER)
                    .map(|p| (LEADER, p, 1))
                    .collect();
                route_batched(&mut net, &answers)?;
                net.charge_rounds(1)?; // neighbor notification

                for &v in &order {
                    if in_mis[v as usize] {
                        alive[v as usize] = false;
                        for &u in g.neighbors(v) {
                            alive[u as usize] = false;
                        }
                    } else {
                        alive[v as usize] = false;
                    }
                }
            }

            prefix_phases += 1;
            prev_rank = rank_bound;
            // Every player measures its residual degree; integer max over
            // fixed chunks is schedule-independent.
            let residual_degree = exec
                .run_chunked(n, PAR_CHUNK, |range| {
                    range
                        .filter(|&v| alive[v])
                        .map(|v| {
                            g.neighbors(v as u32)
                                .iter()
                                .filter(|&&u| alive[u as usize])
                                .count()
                        })
                        .max()
                        .unwrap_or(0)
                })
                .into_iter()
                .max()
                .unwrap_or(0);
            if residual_degree <= tau || prev_rank >= n {
                break;
            }
            exponent *= config.alpha;
        }
    }

    // Sparsified stage: each local round is one mark-exchange — one clique
    // round.
    let local_cfg = LocalMisConfig {
        seed: hash2(config.seed, 0x10CA1),
        max_rounds: (2.0 * (tau.max(2) as f64).log2().ceil()) as usize + 4,
        target_edges: n,
    };
    let local = ghaffari_local_mis(g, &alive, &local_cfg);
    for v in 0..n {
        if local.in_mis[v] {
            in_mis[v] = true;
        }
        if local.decided[v] {
            alive[v] = false;
        }
    }
    net.charge_rounds(local.rounds)?;

    // Final residue (O(n) edges) to the leader, finish greedily, answer.
    let remaining: Vec<VertexId> = (0..n as u32).filter(|&v| alive[v as usize]).collect();
    if !remaining.is_empty() {
        let messages: Vec<(usize, usize, usize)> = exec
            .run_chunked(remaining.len(), PAR_CHUNK, |range| {
                remaining[range]
                    .iter()
                    .filter_map(|&v| {
                        let words = 2 * g
                            .neighbors(v)
                            .iter()
                            .filter(|&&u| alive[u as usize] && u > v)
                            .count();
                        (words > 0).then_some((v as usize, LEADER, words))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        route_batched(&mut net, &messages)?;
        let mut order = remaining.clone();
        order.sort_unstable_by_key(|&v| ranks[v as usize]);
        for &v in &order {
            if !g.neighbors(v).iter().any(|&u| in_mis[u as usize]) {
                in_mis[v as usize] = true;
            }
        }
        let answers: Vec<(usize, usize, usize)> = (0..n)
            .filter(|&p| p != LEADER)
            .map(|p| (LEADER, p, 1))
            .collect();
        route_batched(&mut net, &answers)?;
    }

    let members: Vec<VertexId> = (0..n as u32).filter(|&v| in_mis[v as usize]).collect();
    let mis =
        IndependentSet::new(g, members).expect("greedy construction yields an independent set");
    debug_assert!(mis.is_maximal(g));

    Ok(CliqueMisOutcome {
        mis,
        prefix_phases,
        local_rounds: local.rounds,
        trace: net.execution_trace().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    #[test]
    fn mis_valid_on_many_graphs() {
        for seed in 0..4u64 {
            for g in [
                generators::gnp(200, 0.1, seed).unwrap(),
                generators::gnp(100, 0.4, seed).unwrap(),
                generators::power_law(150, 2.5, 10.0, seed).unwrap(),
                generators::cycle(63),
                generators::star(80),
            ] {
                let out = clique_mis(&g, &CliqueMisConfig::new(seed)).unwrap();
                assert!(out.mis.is_independent(&g), "seed {seed}");
                assert!(out.mis.is_maximal(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn rounds_are_modest() {
        // O(log log Δ) with simulator constants: comfortably under 100 for
        // these sizes.
        let g = generators::gnp(512, 0.1, 1).unwrap();
        let out = clique_mis(&g, &CliqueMisConfig::new(1)).unwrap();
        assert!(out.trace.rounds() < 100, "rounds = {}", out.trace.rounds());
        assert!(out.trace.rounds() >= 3, "at least setup + one phase");
    }

    #[test]
    fn lenzen_precondition_never_violated() {
        // max_load_words <= n per routing call is enforced internally;
        // success of the run certifies it.
        let g = generators::gnp(300, 0.3, 2).unwrap();
        let out = clique_mis(&g, &CliqueMisConfig::new(2)).unwrap();
        assert!(out.trace.max_load_words() <= 300);
    }

    #[test]
    fn empty_graph() {
        let g = mmvc_graph::Graph::empty(0);
        let out = clique_mis(&g, &CliqueMisConfig::new(0)).unwrap();
        assert_eq!(out.trace.rounds(), 0);
        assert!(out.mis.is_empty());
    }

    #[test]
    fn edgeless_graph_all_join() {
        let g = mmvc_graph::Graph::empty(10);
        let out = clique_mis(&g, &CliqueMisConfig::new(0)).unwrap();
        assert_eq!(out.mis.len(), 10);
    }

    #[test]
    fn agrees_with_mpc_variant_on_prefix_structure() {
        // Same permutation seed: both variants simulate the same greedy
        // prefix process, so the phase counts match (the sparsified tails
        // may stop at different residual sizes, so member sets can differ).
        let g = generators::gnp(400, 0.15, 3).unwrap();
        let c = clique_mis(&g, &CliqueMisConfig::new(5)).unwrap();
        let m = crate::mis::greedy_mpc_mis(&g, &crate::mis::GreedyMisConfig::new(5)).unwrap();
        assert_eq!(c.prefix_phases, m.prefix_phases);
        assert!(c.mis.is_maximal(&g) && m.mis.is_maximal(&g));
    }

    #[test]
    fn rejects_bad_alpha() {
        let g = generators::path(4);
        let mut cfg = CliqueMisConfig::new(0);
        cfg.alpha = 0.0;
        assert!(matches!(
            clique_mis(&g, &cfg),
            Err(CoreError::InvalidParameter { name: "alpha", .. })
        ));
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(200, 0.1, 6).unwrap();
        let a = clique_mis(&g, &CliqueMisConfig::new(7)).unwrap();
        let b = clique_mis(&g, &CliqueMisConfig::new(7)).unwrap();
        assert_eq!(a.mis.members(), b.mis.members());
        assert_eq!(a.trace.rounds(), b.trace.rounds());
    }
}
