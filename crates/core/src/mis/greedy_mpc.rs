//! MIS in `O(log log Δ)` MPC rounds (paper, Theorem 1.1, Section 3).
//!
//! The algorithm simulates the randomized greedy MIS: draw a uniform
//! vertex ranking π, then repeatedly ship the subgraph induced by the next
//! *rank prefix* to a single machine, run greedy there, and remove the new
//! MIS vertices and their neighbors everywhere. The prefix boundaries are
//! `r_i = n / Δ^{αⁱ}` with `α = 3/4`, so each shipped subgraph has `O(n)`
//! edges w.h.p. (Lemma 3.1 / Eq. (1)) — the simulator *meters* this
//! instead of assuming it. Once the residual degree is polylogarithmic,
//! the sparsified MIS subroutine (Theorem 2.1, implemented as
//! [`ghaffari_local_mis`]) shatters the residue, which is then finished on
//! one machine.
//!
//! ### Paper constants vs. practical constants
//!
//! The pseudocode hands off to the sparsified subroutine at degree
//! `log¹⁰ n`, which exceeds `n` at every experimentally reachable size and
//! would turn the whole run into a single gather. [`SparsifyThreshold`]
//! therefore offers the paper's constant and a practical `log₂² n`
//! handoff; the experiments report phase counts under the practical
//! schedule (E1) and per-phase shipped edges (E2), the quantities the
//! theorem bounds.

use crate::error::CoreError;
use crate::mis::ghaffari_local::{ghaffari_local_mis, LocalMisConfig};
use crate::PAR_CHUNK;
use mmvc_graph::mis::IndependentSet;
use mmvc_graph::rng::{hash2, invert_permutation, random_permutation};
use mmvc_graph::{Graph, VertexId};
use mmvc_mpc::{Cluster, MpcConfig};
use mmvc_substrate::{Bitset, ExecutorConfig, Substrate};

/// Where the rank-prefix phases hand off to the sparsified subroutine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsifyThreshold {
    /// The pseudocode constant `log¹⁰ n` (degenerates to a single gather at
    /// practical `n`).
    Paper,
    /// `max(8, log₂² n)` — preserves the structure at laptop scale.
    Practical,
    /// An explicit degree threshold.
    Explicit(usize),
}

impl SparsifyThreshold {
    /// The concrete degree threshold for a graph on `n` vertices.
    pub fn value(&self, n: usize) -> usize {
        let log2n = (n.max(2) as f64).log2();
        match self {
            SparsifyThreshold::Paper => log2n.powi(10) as usize,
            SparsifyThreshold::Practical => (log2n * log2n) as usize,
            SparsifyThreshold::Explicit(d) => *d,
        }
        .max(8)
    }
}

/// Configuration for [`greedy_mpc_mis`].
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyMisConfig {
    /// Seed for the ranking and the sparsified subroutine.
    pub seed: u64,
    /// Rank-prefix exponent `α` (paper: `3/4`).
    pub alpha: f64,
    /// Per-machine memory is `space_factor · n` words.
    pub space_factor: f64,
    /// Degree at which prefix phases hand off to the sparsified MIS.
    pub sparsify: SparsifyThreshold,
    /// How per-machine local work executes (results are identical for any
    /// executor; see [`ExecutorConfig`]).
    pub executor: ExecutorConfig,
}

impl GreedyMisConfig {
    /// Default configuration: `α = 3/4`, `8n` words, practical handoff,
    /// threaded executor.
    pub fn new(seed: u64) -> Self {
        GreedyMisConfig {
            seed,
            alpha: 0.75,
            space_factor: 8.0,
            sparsify: SparsifyThreshold::Practical,
            executor: ExecutorConfig::default(),
        }
    }
}

/// Output of [`greedy_mpc_mis`].
#[derive(Debug, Clone)]
pub struct GreedyMisOutcome {
    /// The maximal independent set.
    pub mis: IndependentSet,
    /// Rank-prefix phases executed (the `O(log log Δ)` quantity of
    /// Theorem 1.1).
    pub prefix_phases: usize,
    /// Rounds used by the sparsified local subroutine.
    pub local_rounds: usize,
    /// Edge words shipped to the gathering machine, per prefix phase —
    /// the Lemma 3.1 / Eq. (1) `O(n)` quantity (experiment E2).
    pub phase_edge_words: Vec<usize>,
    /// The metered MPC execution.
    pub trace: mmvc_substrate::ExecutionTrace,
}

/// Computes an MIS with the Theorem 1.1 MPC algorithm.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for `alpha` outside `(0, 1)` or a
///   non-positive `space_factor`.
/// * [`CoreError::Mpc`] if a shipped subgraph overflows the per-machine
///   budget (the paper's `O(n)` bound failing at this configuration).
///
/// # Examples
///
/// ```
/// use mmvc_core::mis::{greedy_mpc_mis, GreedyMisConfig};
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(500, 0.05, 1)?;
/// let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(7))?;
/// assert!(out.mis.is_maximal(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn greedy_mpc_mis(g: &Graph, config: &GreedyMisConfig) -> Result<GreedyMisOutcome, CoreError> {
    if !(0.0..1.0).contains(&config.alpha) || config.alpha <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "alpha",
            message: format!("must lie in (0, 1), got {}", config.alpha),
        });
    }
    if !config.space_factor.is_finite() || config.space_factor <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "space_factor",
            message: format!("must be positive, got {}", config.space_factor),
        });
    }

    let n = g.num_vertices();
    let budget = ((config.space_factor * n.max(1) as f64).ceil() as usize).max(64);
    let machines = (4 * g.edge_words()).div_ceil(budget).max(2);
    let exec = config.executor.clone().ensure_scratch();
    let pool = exec
        .scratch()
        .expect("ensure_scratch installs a pool")
        .clone();
    let mut cluster = Cluster::new(MpcConfig::new(machines, budget)?).with_executor(exec.clone());

    // The uniform ranking π (Section 3.1).
    let perm = random_permutation(n, config.seed);
    let ranks = invert_permutation(&perm);

    // Word-packed membership masks (1 bit/vertex instead of 1 byte) —
    // the per-round scans below stream these, and the word buffers come
    // from the scratch arena so repeated runs reuse them.
    let mut in_mis = Bitset::new_in(&pool, n);
    // `alive`: not yet decided (not in MIS, not an MIS neighbor).
    let mut alive = Bitset::new_in(&pool, n);
    alive.set_all();
    let mut phase_edge_words = Vec::new();

    let delta = g.max_degree();
    let tau = config.sparsify.value(n);
    let mut prefix_phases = 0usize;

    if delta > tau && n > 0 {
        let delta_f = delta as f64;
        let mut exponent = config.alpha;
        let mut prev_rank = 0usize;
        // Residual degree after processing rank r is O(n log n / r)
        // (Lemma 3.1); stop once the measured residual degree is <= tau.
        loop {
            let rank_bound = ((n as f64) / delta_f.powf(exponent)).ceil() as usize;
            let rank_bound = rank_bound.clamp(prev_rank + 1, n);

            // Batch: alive vertices with rank in [prev_rank, rank_bound).
            let batch: Vec<VertexId> = (prev_rank..rank_bound)
                .map(|r| perm[r])
                .filter(|&v| alive.get(v as usize))
                .collect();

            if !batch.is_empty() {
                // Ship the induced subgraph of the residual graph on the
                // batch to machine 0 (one MPC round, metered — Lemma 3.1's
                // O(n) claim is enforced here).
                let in_batch = {
                    let mut mask = Bitset::new_in(&pool, n);
                    for &v in &batch {
                        mask.set(v as usize);
                    }
                    mask
                };
                // Per-machine local work: every machine counts the
                // in-batch residual edges of its vertex share. Chunk
                // boundaries are thread-count-independent, so the summed
                // total is identical under any executor.
                let edges: usize = exec
                    .run_chunked(batch.len(), PAR_CHUNK, |range| {
                        batch[range]
                            .iter()
                            .map(|&v| {
                                g.neighbors(v)
                                    .iter()
                                    .filter(|&&u| {
                                        in_batch.get(u as usize) && alive.get(u as usize) && v < u
                                    })
                                    .count()
                            })
                            .sum::<usize>()
                    })
                    .into_iter()
                    .sum();
                in_batch.recycle(&pool);
                let words = batch.len() + 2 * edges;
                phase_edge_words.push(words);
                cluster.round(|r| r.receive(0, words))?;

                // Machine 0 runs the sequential greedy over the batch in
                // rank order (earlier ranks were already decided globally).
                let mut order = batch.clone();
                order.sort_unstable_by_key(|&v| ranks[v as usize]);
                for &v in &order {
                    if !alive.get(v as usize) {
                        continue;
                    }
                    let blocked = g.neighbors(v).iter().any(|&u| in_mis.get(u as usize));
                    if !blocked {
                        in_mis.set(v as usize);
                    }
                }

                // One broadcast round: announce new MIS vertices; remove
                // them and their neighbors everywhere.
                let announced = order.iter().filter(|&&v| in_mis.get(v as usize)).count();
                cluster.round(|r| r.broadcast(announced.min(budget)))?;
                for &v in &order {
                    if in_mis.get(v as usize) {
                        alive.clear(v as usize);
                        for &u in g.neighbors(v) {
                            alive.clear(u as usize);
                        }
                    } else {
                        // Processed but dominated by an earlier MIS vertex.
                        alive.clear(v as usize);
                    }
                }
            }

            prefix_phases += 1;
            prev_rank = rank_bound;

            // Measured residual degree (the simulator can observe what
            // Lemma 3.1 proves). Integer max over fixed vertex chunks:
            // schedule-independent under any executor.
            let residual_degree = exec
                .run_chunked(n, PAR_CHUNK, |range| {
                    range
                        .filter(|&v| alive.get(v))
                        .map(|v| {
                            g.neighbors(v as u32)
                                .iter()
                                .filter(|&&u| alive.get(u as usize))
                                .count()
                        })
                        .max()
                        .unwrap_or(0)
                })
                .into_iter()
                .max()
                .unwrap_or(0);
            if residual_degree <= tau || prev_rank >= n {
                break;
            }
            exponent *= config.alpha;
        }
    }

    // Sparsified stage: O(log τ) local rounds until the residue fits on a
    // machine.
    let local_cfg = LocalMisConfig {
        seed: hash2(config.seed, 0x10CA1),
        max_rounds: (2.0 * (tau.max(2) as f64).log2().ceil()) as usize + 4,
        target_edges: budget / 4,
    };
    // The sparsified subroutine keeps its historical `&[bool]` interface
    // (shared with the clique path); materialize the mask once.
    let alive_bools: Vec<bool> = (0..n).map(|v| alive.get(v)).collect();
    let local = ghaffari_local_mis(g, &alive_bools, &local_cfg);
    for v in 0..n {
        if local.in_mis[v] {
            in_mis.set(v);
        }
        if local.decided[v] {
            alive.clear(v);
        }
    }
    // Each local round is O(1) MPC rounds with small per-machine load.
    cluster.charge_rounds(local.rounds, (n / machines).max(1).min(budget))?;

    // Final gather: remaining graph on one machine, finish greedily.
    let remaining: Vec<VertexId> = (0..n as u32).filter(|&v| alive.get(v as usize)).collect();
    if !remaining.is_empty() {
        let words = remaining.len()
            + 2 * exec
                .run_chunked(remaining.len(), PAR_CHUNK, |range| {
                    remaining[range]
                        .iter()
                        .map(|&v| {
                            g.neighbors(v)
                                .iter()
                                .filter(|&&u| alive.get(u as usize) && u > v)
                                .count()
                        })
                        .sum::<usize>()
                })
                .into_iter()
                .sum::<usize>();
        cluster.round(|r| r.receive(0, words))?;
        let mut order = remaining.clone();
        order.sort_unstable_by_key(|&v| ranks[v as usize]);
        for &v in &order {
            let blocked = g.neighbors(v).iter().any(|&u| in_mis.get(u as usize));
            if !blocked {
                in_mis.set(v as usize);
            }
        }
    }

    let members: Vec<VertexId> = (0..n as u32).filter(|&v| in_mis.get(v as usize)).collect();
    alive.recycle(&pool);
    in_mis.recycle(&pool);
    let mis =
        IndependentSet::new(g, members).expect("greedy construction yields an independent set");
    debug_assert!(mis.is_maximal(g));

    Ok(GreedyMisOutcome {
        mis,
        prefix_phases,
        local_rounds: local.rounds,
        phase_edge_words,
        trace: cluster.execution_trace().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::generators;

    #[test]
    fn mis_valid_on_many_graphs() {
        for seed in 0..5u64 {
            for g in [
                generators::gnp(400, 0.05, seed).unwrap(),
                generators::gnp(200, 0.3, seed).unwrap(),
                generators::power_law(300, 2.5, 12.0, seed).unwrap(),
                generators::complete(50),
                generators::star(100),
                generators::cycle(97),
            ] {
                let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed)).unwrap();
                assert!(out.mis.is_independent(&g), "seed {seed}");
                assert!(out.mis.is_maximal(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Graph::empty(20);
        let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(1)).unwrap();
        assert_eq!(out.mis.len(), 20);
        assert_eq!(out.prefix_phases, 0);
    }

    use mmvc_graph::Graph;

    #[test]
    fn matches_sequential_greedy() {
        // The MPC simulation runs the *same* process as sequential
        // randomized greedy with the same permutation, so results agree.
        let g = generators::gnp(300, 0.1, 3).unwrap();
        let cfg = GreedyMisConfig::new(11);
        let out = greedy_mpc_mis(&g, &cfg).unwrap();
        let perm = random_permutation(300, 11);
        let ranks = invert_permutation(&perm);
        let seq = mmvc_graph::mis::greedy_mis_by_rank(&g, &ranks);
        // Prefix phases replicate greedy exactly; the sparsified stage may
        // diverge (different process), so compare only when no local rounds
        // ran... they did run — instead assert both are maximal and sizes
        // are close.
        assert!(out.mis.is_maximal(&g));
        let (a, b) = (out.mis.len() as f64, seq.len() as f64);
        assert!(
            (a - b).abs() <= 0.35 * b.max(1.0),
            "sizes {a} vs {b} diverge too much"
        );
    }

    #[test]
    fn prefix_phases_scale_like_log_log_delta() {
        // Denser graph (larger Δ) needs more prefix phases, but only a few.
        let sparse = generators::gnp(2000, 10.0 / 2000.0, 5).unwrap();
        let dense = generators::gnp(2000, 0.2, 5).unwrap();
        let a = greedy_mpc_mis(&sparse, &GreedyMisConfig::new(5)).unwrap();
        let b = greedy_mpc_mis(&dense, &GreedyMisConfig::new(5)).unwrap();
        assert!(a.prefix_phases <= b.prefix_phases + 1);
        assert!(b.prefix_phases <= 8, "got {}", b.prefix_phases);
    }

    #[test]
    fn phase_edges_bounded_by_space() {
        let g = generators::gnp(1000, 0.1, 6).unwrap();
        let cfg = GreedyMisConfig::new(6);
        let out = greedy_mpc_mis(&g, &cfg).unwrap();
        for (i, &w) in out.phase_edge_words.iter().enumerate() {
            assert!(w <= 8 * 1000, "phase {i} shipped {w} words");
        }
    }

    #[test]
    fn memory_violation_reported() {
        // Degree just above the sparsify threshold so prefix batches are
        // large, with a starved budget: the first gather must overflow.
        let g = generators::gnp(2000, 0.07, 7).unwrap();
        let mut cfg = GreedyMisConfig::new(7);
        cfg.space_factor = 0.05; // max(64, 100) = 100 words
        let err = greedy_mpc_mis(&g, &cfg).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Mpc(mmvc_mpc::MpcError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(4);
        let mut cfg = GreedyMisConfig::new(0);
        cfg.alpha = 1.5;
        assert!(matches!(
            greedy_mpc_mis(&g, &cfg),
            Err(CoreError::InvalidParameter { name: "alpha", .. })
        ));
        let mut cfg = GreedyMisConfig::new(0);
        cfg.space_factor = 0.0;
        assert!(matches!(
            greedy_mpc_mis(&g, &cfg),
            Err(CoreError::InvalidParameter {
                name: "space_factor",
                ..
            })
        ));
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(300, 0.1, 8).unwrap();
        let a = greedy_mpc_mis(&g, &GreedyMisConfig::new(9)).unwrap();
        let b = greedy_mpc_mis(&g, &GreedyMisConfig::new(9)).unwrap();
        assert_eq!(a.mis.members(), b.mis.members());
        let c = greedy_mpc_mis(&g, &GreedyMisConfig::new(10)).unwrap();
        assert!(a.mis.members() != c.mis.members() || a.mis.len() == c.mis.len());
    }

    #[test]
    fn paper_threshold_single_gather() {
        let g = generators::gnp(200, 0.1, 9).unwrap();
        let mut cfg = GreedyMisConfig::new(9);
        cfg.sparsify = SparsifyThreshold::Paper;
        let out = greedy_mpc_mis(&g, &cfg).unwrap();
        assert_eq!(out.prefix_phases, 0, "log^10 n >> Δ: no prefix phases");
        assert!(out.mis.is_maximal(&g));
    }
}
