//! Property-based tests over the algorithm crate: the paper's invariants
//! must hold on *arbitrary* random graphs, not just the fixtures unit
//! tests pick.

use crate::baselines::{luby_maximal_matching, luby_mis};
use crate::epsilon::Epsilon;
use crate::filtering::{filtering_maximal_matching, FilteringConfig};
use crate::matching::{
    augmentation_pass, central_rand, integral_matching, mpc_simulation, round_fractional,
    IntegralMatchingConfig, MpcMatchingConfig,
};
use crate::mis::{greedy_mpc_mis, GreedyMisConfig};
use mmvc_graph::matching::{blossom, greedy_maximal_matching};
use mmvc_graph::{generators, Graph};
use proptest::prelude::*;

fn eps() -> Epsilon {
    Epsilon::new(0.1).expect("valid eps")
}

/// Random test graph: size, density, and seed all arbitrary.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..80, 0.0f64..0.6, any::<u64>())
        .prop_map(|(n, p, seed)| generators::gnp(n, p, seed).expect("valid p"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mpc_mis_always_maximal_independent(g in arb_graph(), seed: u64) {
        let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed)).expect("fits budget");
        prop_assert!(out.mis.is_independent(&g));
        prop_assert!(out.mis.is_maximal(&g));
    }

    #[test]
    fn luby_always_maximal_independent(g in arb_graph(), seed: u64) {
        let out = luby_mis(&g, seed);
        prop_assert!(out.mis.is_independent(&g));
        prop_assert!(out.mis.is_maximal(&g));
    }

    #[test]
    fn central_rand_invariants(g in arb_graph(), seed: u64) {
        let out = central_rand(&g, eps(), seed);
        prop_assert!(out.cover.covers(&g));
        prop_assert!(out.fractional.is_feasible(&g));
        // Weak duality: fractional matching weight <= any vertex cover.
        prop_assert!(out.fractional.weight() <= out.cover.len() as f64 + 1e-9);
    }

    #[test]
    fn mpc_simulation_invariants(g in arb_graph(), seed: u64) {
        let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), seed))
            .expect("fits budget");
        prop_assert!(out.cover.covers(&g));
        prop_assert!(out.fractional.is_feasible(&g));
        // The heavy certificate is part of the cover and not removed.
        for &v in &out.heavy_certificate {
            prop_assert!(out.cover.contains(v));
            prop_assert!(!out.removed[v as usize]);
        }
    }

    #[test]
    fn rounding_yields_valid_positive_weight_matching(g in arb_graph(), seed: u64) {
        let sim = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), seed))
            .expect("fits budget");
        let m = round_fractional(&g, &sim.fractional, &sim.heavy_certificate, seed ^ 0xFE)
            .expect("valid candidates");
        for e in m.edges() {
            prop_assert!(g.has_edge(e.u(), e.v()));
            let idx = g.edges().index_of(e).expect("edge of g");
            prop_assert!(sim.fractional.edge_weight(idx) > 0.0);
        }
    }

    #[test]
    fn integral_matching_sandwich(g in arb_graph(), seed: u64) {
        let out = integral_matching(&g, &IntegralMatchingConfig::new(eps(), seed))
            .expect("fits budget");
        let opt = blossom(&g).len();
        // |M| <= |M*| <= (2+eps)|M| and the cover sandwiches from above.
        prop_assert!(out.matching.len() <= opt);
        prop_assert!((2.0 + 0.1) * out.matching.len() as f64 + 1e-9 >= opt as f64);
        prop_assert!(out.cover.covers(&g));
        prop_assert!(out.cover.len() >= opt);
    }

    #[test]
    fn filtering_matches_maximality(g in arb_graph(), seed: u64) {
        let out = filtering_maximal_matching(&g, &FilteringConfig::new(seed))
            .expect("fits budget");
        prop_assert!(out.matching.is_maximal(&g));
        prop_assert!(2 * out.matching.len() >= blossom(&g).len());
    }

    #[test]
    fn augmentation_never_shrinks_matching(g in arb_graph(), limit in 1usize..12) {
        let mut m = greedy_maximal_matching(&g);
        let before = m.len();
        let limit = if limit % 2 == 0 { limit + 1 } else { limit };
        augmentation_pass(&g, &mut m, limit);
        prop_assert!(m.len() >= before);
        for e in m.edges() {
            prop_assert!(g.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn line_graph_matching_maximal(g in arb_graph(), seed: u64) {
        let out = luby_maximal_matching(&g, seed);
        prop_assert!(out.matching.is_maximal(&g));
    }

    #[test]
    fn trace_loads_respect_budget(g in arb_graph(), seed: u64) {
        let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), seed))
            .expect("fits budget");
        let budget = (8.0 * g.num_vertices().max(1) as f64).ceil() as usize;
        prop_assert!(out.trace.max_load_words() <= budget.max(16));
    }
}
