//! Distributed runs: replay a metered MPC execution over real TCP
//! parties and re-meter it from the wire.
//!
//! The simulator ([`run`]) meters rounds and per-machine loads inside
//! one process. [`run_distributed`] promotes the same spec to measured
//! network traffic in three steps:
//!
//! 1. run the spec in-process with a [`ChargeLog`] attached — a pure
//!    observer that records every completed round's exact per-machine
//!    loads (the report is byte-identical to a plain [`run`]);
//! 2. replay that charge script through an
//!    [`mmvc_substrate::net::Coordinator`] and `N` parties (threads in
//!    one process, or real `mmvc party` child processes), one `Data`
//!    frame per loaded machine with a payload of exactly `words` bytes;
//! 3. rebuild the substrate accounting from the parties'
//!    acknowledgements into a fresh wire-side ledger, and return a
//!    report whose `substrate`/`trace` fields carry the re-metered
//!    values.
//!
//! The parity contract — pinned by `tests/net_parity.rs` — is that the
//! distributed report's canonical bytes equal the in-process report's:
//! the simulator's accounting validated against what actually crossed
//! a socket.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::error::CoreError;
use crate::run::{run, RunReport, RunSpec};
use mmvc_substrate::net::{
    Coordinator, NetConfig, PartyFault, PartyRunner, WireStats, DEFAULT_ACCEPT_TIMEOUT_MS,
    DEFAULT_IO_TIMEOUT_MS,
};
use mmvc_substrate::{ChargeLog, SubstrateError};

/// How party endpoints are hosted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartyLaunch {
    /// Parties run as threads inside this process — fast, used by most
    /// tests.
    Threads,
    /// Parties run as real child processes: `exe party --addr … --party
    /// … --parties …` (the `mmvc` binary). The full multi-process
    /// configuration the issue's parity pins exercise.
    Processes {
        /// Path to the `mmvc` binary (tests use `env!("CARGO_BIN_EXE_mmvc")`).
        exe: PathBuf,
    },
}

/// Options for a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistOptions {
    /// Number of parties to shard machines over (≥ 1; machines are
    /// assigned `machine % parties`).
    pub parties: usize,
    /// Thread or process hosting.
    pub launch: PartyLaunch,
    /// Deadline for all parties to connect, in ms.
    pub accept_timeout_ms: u64,
    /// Deadline for any single read/write step, in ms.
    pub io_timeout_ms: u64,
    /// Inject a fault into one party: `(party id, fault)`. Fault tests
    /// only; thread mode applies it directly, process mode passes
    /// `--fault` to the child.
    pub fault: Option<(usize, PartyFault)>,
}

impl DistOptions {
    /// Thread-hosted parties with default timeouts.
    pub fn threads(parties: usize) -> Self {
        DistOptions {
            parties,
            launch: PartyLaunch::Threads,
            accept_timeout_ms: DEFAULT_ACCEPT_TIMEOUT_MS,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
            fault: None,
        }
    }

    /// Process-hosted parties spawned from `exe`, default timeouts.
    pub fn processes(parties: usize, exe: impl Into<PathBuf>) -> Self {
        DistOptions {
            parties,
            launch: PartyLaunch::Processes { exe: exe.into() },
            accept_timeout_ms: DEFAULT_ACCEPT_TIMEOUT_MS,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
            fault: None,
        }
    }
}

/// Everything a distributed run produced.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// The distributed report: witnesses/metrics from the in-process
    /// run, `substrate` and `trace` re-metered from party
    /// acknowledgements, `wall_ms` the distributed wall time. Canonical
    /// bytes are pinned equal to [`sim_report`](Self::sim_report)'s.
    pub report: RunReport,
    /// The in-process simulator run of the same spec.
    pub sim_report: RunReport,
    /// Raw wire measurements; `wire.data_payload_bytes` equals the
    /// ledger's `total_words` (1 word ≡ 1 payload byte).
    pub wire: WireStats,
}

/// Runs `spec` distributed over `opts.parties` networked parties and
/// returns the wire-metered report next to the in-process one.
///
/// Only metered MPC algorithms can be distributed (`greedy-mis`,
/// `mpc-matching`, `filtering`): the replay needs real per-round
/// charges, which unmetered kinds and the clique substrate don't
/// produce through the [`ChargeLog`] hook.
pub fn run_distributed(spec: &RunSpec, opts: &DistOptions) -> Result<DistOutcome, CoreError> {
    if opts.parties == 0 {
        return Err(CoreError::InvalidParameter {
            name: "parties",
            message: "need at least one party".into(),
        });
    }

    // 1. In-process run with the charge recorder attached. The log is
    // an observer: `sim_report` is byte-identical to a plain run.
    let log = ChargeLog::new();
    let mut recorded = spec.clone();
    recorded.executor = spec.executor.clone().with_charge_log(&log);
    let sim_report = run(&recorded)?;
    if !sim_report.substrate.metered || sim_report.substrate.substrate != "mpc" {
        return Err(CoreError::InvalidParameter {
            name: "algorithm",
            message: format!(
                "`{}` is not a metered MPC algorithm; distributed replay needs real per-round charges",
                spec.algorithm
            ),
        });
    }
    let charges = log.take();
    if charges.len() != sim_report.substrate.rounds {
        return Err(CoreError::InvalidParameter {
            name: "algorithm",
            message: format!(
                "charge log recorded {} rounds but the report meters {}",
                charges.len(),
                sim_report.substrate.rounds
            ),
        });
    }
    let slots = charges.iter().map(|c| c.loads.len()).max().unwrap_or(1);

    // 2. Replay over real sockets. Port 0: the OS assigns the port, so
    // concurrent harnesses never collide.
    let started = Instant::now();
    let coordinator = Coordinator::bind(NetConfig {
        parties: opts.parties,
        accept_timeout_ms: opts.accept_timeout_ms,
        io_timeout_ms: opts.io_timeout_ms,
    })?;
    let addr = coordinator.local_addr();
    let telemetry = spec.executor.telemetry().clone();

    let coord_result;
    match &opts.launch {
        PartyLaunch::Threads => {
            let handles: Vec<_> = (0..opts.parties)
                .map(|party| {
                    let mut runner = PartyRunner::new(party, opts.parties, addr);
                    runner.io_timeout_ms = opts.io_timeout_ms;
                    if let Some((p, fault)) = opts.fault {
                        if p == party {
                            runner.fault = Some(fault);
                        }
                    }
                    std::thread::spawn(move || runner.run())
                })
                .collect();
            coord_result =
                coordinator.run(sim_report.substrate.substrate, slots, &charges, &telemetry);
            // Party threads always terminate: a successful run ends at
            // FinishAck, a failed one at EOF when the coordinator drops
            // the connections above.
            let party_results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("party thread panicked"))
                .collect();
            if coord_result.is_ok() {
                for (party, res) in party_results.into_iter().enumerate() {
                    if let Err(e) = res {
                        return Err(CoreError::Substrate(SubstrateError::Net {
                            party,
                            round: 0,
                            message: format!("party failed after a clean barrier run: {e}"),
                        }));
                    }
                }
            }
        }
        PartyLaunch::Processes { exe } => {
            let mut children = Vec::with_capacity(opts.parties);
            for party in 0..opts.parties {
                let mut cmd = std::process::Command::new(exe);
                cmd.arg("party")
                    .arg("--addr")
                    .arg(addr.to_string())
                    .arg("--party")
                    .arg(party.to_string())
                    .arg("--parties")
                    .arg(opts.parties.to_string())
                    .arg("--timeout-ms")
                    .arg(opts.io_timeout_ms.to_string())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null());
                if let Some((p, fault)) = opts.fault {
                    if p == party {
                        cmd.arg("--fault").arg(fault_flag(fault));
                    }
                }
                let child = cmd.spawn().map_err(|e| {
                    CoreError::Substrate(SubstrateError::Net {
                        party,
                        round: 0,
                        message: format!("could not spawn party process: {e}"),
                    })
                })?;
                children.push(child);
            }
            coord_result =
                coordinator.run(sim_report.substrate.substrate, slots, &charges, &telemetry);
            let reap_deadline =
                Instant::now() + Duration::from_millis(opts.io_timeout_ms.max(1_000));
            for (party, mut child) in children.into_iter().enumerate() {
                let status = wait_deadline(&mut child, reap_deadline);
                if coord_result.is_ok() {
                    match status {
                        Some(s) if s.success() => {}
                        Some(s) => {
                            return Err(CoreError::Substrate(SubstrateError::Net {
                                party,
                                round: 0,
                                message: format!("party process exited with {s}"),
                            }));
                        }
                        None => {
                            return Err(CoreError::Substrate(SubstrateError::Net {
                                party,
                                round: 0,
                                message: "party process did not exit within the deadline".into(),
                            }));
                        }
                    }
                }
            }
        }
    }
    let (ledger, wire) = coord_result?;

    // 3. The distributed report: same witnesses and metrics, substrate
    // accounting re-metered from the wire-side ledger.
    let trace = ledger.trace().clone();
    let mut report = sim_report.clone();
    report.substrate.rounds = trace.rounds();
    report.substrate.max_load_words = trace.max_load_words();
    report.substrate.total_words = trace.total_words();
    report.trace = trace;
    report.wall_ms = started.elapsed().as_secs_f64() * 1_000.0;

    Ok(DistOutcome {
        report,
        sim_report,
        wire,
    })
}

/// The `--fault` CLI spelling of a fault ([`PartyFault::parse`]'s
/// inverse).
pub fn fault_flag(fault: PartyFault) -> String {
    match fault {
        PartyFault::DieAtRound(r) => format!("die:{r}"),
        PartyFault::CorruptChecksumAtRound(r) => format!("corrupt:{r}"),
        PartyFault::TruncateAckAtRound(r) => format!("truncate:{r}"),
    }
}

/// Polls `try_wait` until the child exits or the deadline passes; kills
/// and reaps the child on timeout (returns `None`). Never blocks
/// unboundedly — the "coordinator must not hang" contract extends to
/// child reaping.
fn wait_deadline(
    child: &mut std::process::Child,
    deadline: Instant,
) -> Option<std::process::ExitStatus> {
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return None;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::AlgorithmKind;

    fn small_spec(kind: AlgorithmKind) -> RunSpec {
        let mut spec = RunSpec::new(kind, "gnp-sparse");
        spec.n = Some(64);
        spec.seed = 11;
        spec.overrides.space_factor = Some(32.0);
        spec
    }

    #[test]
    fn threads_reproduce_simulator_accounting() {
        let spec = small_spec(AlgorithmKind::GreedyMis);
        let out = run_distributed(&spec, &DistOptions::threads(3)).unwrap();
        assert_eq!(out.report.substrate.rounds, out.sim_report.substrate.rounds);
        assert_eq!(
            out.report.substrate.total_words,
            out.sim_report.substrate.total_words
        );
        assert_eq!(
            out.report.substrate.max_load_words,
            out.sim_report.substrate.max_load_words
        );
        assert_eq!(
            out.report.trace.per_round(),
            out.sim_report.trace.per_round()
        );
        // The wire cross-check: ledger words == framed payload bytes.
        assert_eq!(
            out.wire.data_payload_bytes,
            out.report.substrate.total_words
        );
        assert!(out.wire.data_payload_bytes > 0);
    }

    #[test]
    fn unmetered_kinds_are_refused() {
        let spec = small_spec(AlgorithmKind::LubyMis);
        let err = run_distributed(&spec, &DistOptions::threads(2)).unwrap_err();
        assert!(err.to_string().contains("not a metered MPC algorithm"));
    }

    #[test]
    fn zero_parties_is_refused() {
        let spec = small_spec(AlgorithmKind::GreedyMis);
        let err = run_distributed(&spec, &DistOptions::threads(0)).unwrap_err();
        assert!(err.to_string().contains("at least one party"));
    }

    #[test]
    fn injected_death_names_party_and_round() {
        let spec = small_spec(AlgorithmKind::GreedyMis);
        let mut opts = DistOptions::threads(2);
        opts.io_timeout_ms = 2_000;
        opts.fault = Some((1, PartyFault::DieAtRound(1)));
        let err = run_distributed(&spec, &opts).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("party 1") && s.contains("round 1"), "{s}");
    }
}
