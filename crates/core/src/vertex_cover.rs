//! First-class API for the paper's third problem: `(2+ε)`-approximate
//! minimum vertex cover in `O(log log n)` MPC rounds (Theorem 1.2).
//!
//! The cover is the frozen/removed vertex set of `MPC-Simulation`
//! (Section 4); this module packages it with a *self-certifying* quality
//! bound: the integral matching computed alongside is a lower bound on
//! the optimum cover (weak duality), so `|C| / |M|` is a certificate of
//! the achieved ratio that needs no exact solver.

use crate::epsilon::Epsilon;
use crate::error::CoreError;
use crate::matching::{integral_matching, IntegralMatchingConfig, MpcMatchingConfig};
use mmvc_graph::vertex_cover::VertexCover;
use mmvc_graph::Graph;

/// Configuration for [`approx_min_vertex_cover`].
#[derive(Debug, Clone, PartialEq)]
pub struct VertexCoverConfig {
    /// The underlying simulation configuration.
    pub sim: MpcMatchingConfig,
}

impl VertexCoverConfig {
    /// Default configuration from `(ε, seed)`.
    pub fn new(eps: Epsilon, seed: u64) -> Self {
        VertexCoverConfig {
            sim: MpcMatchingConfig::new(eps, seed),
        }
    }
}

/// Output of [`approx_min_vertex_cover`].
#[derive(Debug, Clone)]
pub struct VertexCoverOutcome {
    /// The vertex cover (Theorem 1.2: within `(2+ε)` of minimum).
    pub cover: VertexCover,
    /// Size of the certified lower bound: an integral matching of the
    /// graph (`|M| ≤ VC*`).
    pub matching_lower_bound: usize,
    /// `|C| / max(1, |M|)` — a *certificate* that the achieved ratio is at
    /// most this value, computable without an exact solver.
    pub certified_ratio: f64,
    /// Total MPC rounds.
    pub total_rounds: usize,
}

/// Computes a `(2+ε)`-approximate minimum vertex cover (paper,
/// Theorem 1.2) with a self-certifying ratio bound.
///
/// # Errors
///
/// Propagates [`CoreError`] from the underlying simulation.
///
/// # Examples
///
/// ```
/// use mmvc_core::vertex_cover::{approx_min_vertex_cover, VertexCoverConfig};
/// use mmvc_core::Epsilon;
/// use mmvc_graph::generators;
///
/// let g = generators::gnp(200, 0.05, 1)?;
/// let out = approx_min_vertex_cover(&g, &VertexCoverConfig::new(Epsilon::new(0.1)?, 2))?;
/// assert!(out.cover.covers(&g));
/// assert!(out.certified_ratio <= 2.1 + 1.0); // loose sanity; see tests
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn approx_min_vertex_cover(
    g: &Graph,
    config: &VertexCoverConfig,
) -> Result<VertexCoverOutcome, CoreError> {
    let out = integral_matching(
        g,
        &IntegralMatchingConfig {
            sim: config.sim.clone(),
            max_extractions: None,
        },
    )?;
    let lb = out.matching.len();
    let certified_ratio = out.cover.len() as f64 / lb.max(1) as f64;
    Ok(VertexCoverOutcome {
        cover: out.cover,
        matching_lower_bound: lb,
        certified_ratio,
        total_rounds: out.total_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_graph::{generators, vertex_cover as gvc};

    fn cfg(seed: u64) -> VertexCoverConfig {
        VertexCoverConfig::new(Epsilon::new(0.1).unwrap(), seed)
    }

    #[test]
    fn cover_valid_and_certified() {
        for seed in 0..5u64 {
            let g = generators::gnp(150, 0.08, seed).unwrap();
            let out = approx_min_vertex_cover(&g, &cfg(seed)).unwrap();
            assert!(out.cover.covers(&g), "seed {seed}");
            // Certificate soundness: |M| <= VC* <= |C| means the true
            // ratio is at most the certified one.
            let exact_lb = gvc::vertex_cover_lower_bound(&g);
            assert!(out.matching_lower_bound <= exact_lb, "seed {seed}");
            assert!(out.cover.len() >= exact_lb, "seed {seed}");
            // Certified ratio within the theory: |C| <= (2+eps)·VC* and
            // |M| >= VC*/(2+eps) gives certified <= (2+eps)².
            assert!(
                out.certified_ratio <= (2.1f64).powi(2) + 1e-9,
                "seed {seed}: certified {}",
                out.certified_ratio
            );
        }
    }

    #[test]
    fn measured_ratio_against_exact_on_small_graphs() {
        // Kept tiny: the exact solver is branch-and-bound (exponential).
        for seed in 0..8u64 {
            let g = generators::gnp(18, 0.2, seed).unwrap();
            let out = approx_min_vertex_cover(&g, &cfg(seed)).unwrap();
            let exact = gvc::exact_min_vertex_cover_size(&g);
            assert!(
                out.cover.len() as f64 <= 2.1 * exact.max(1) as f64,
                "seed {seed}: {} vs exact {exact}",
                out.cover.len()
            );
        }
    }

    #[test]
    fn empty_graph_empty_cover() {
        let g = Graph::empty(5);
        let out = approx_min_vertex_cover(&g, &cfg(1)).unwrap();
        assert!(out.cover.is_empty());
        assert_eq!(out.certified_ratio, 0.0);
    }

    #[test]
    fn star_graph_small_cover() {
        let g = generators::star(30);
        let out = approx_min_vertex_cover(&g, &cfg(2)).unwrap();
        assert!(out.cover.covers(&g));
        assert!(out.cover.len() <= 2, "star cover is 1 optimal, 2 allowed");
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(100, 0.1, 3).unwrap();
        let a = approx_min_vertex_cover(&g, &cfg(7)).unwrap();
        let b = approx_min_vertex_cover(&g, &cfg(7)).unwrap();
        assert_eq!(a.cover.members(), b.cover.members());
    }
}
