//! # mmvc-core
//!
//! From-scratch implementation of the algorithms in **"Improved Massively
//! Parallel Computation Algorithms for MIS, Matching, and Vertex Cover"**
//! (Ghaffari, Gouleakis, Konrad, Mitrović, Rubinfeld — PODC 2018,
//! arXiv:1802.08237), running on the simulated substrates of
//! [`mmvc_mpc`] and [`mmvc_clique`].
//!
//! ## What's here
//!
//! | Paper result | Entry point |
//! |---|---|
//! | Theorem 1.1 — MIS in `O(log log Δ)` MPC rounds | [`mis::greedy_mpc_mis`] |
//! | Theorem 1.1 — MIS in `O(log log Δ)` CONGESTED-CLIQUE rounds | [`mis::clique_mis`] |
//! | Lemma 4.1 — `Central` / `Central-Rand` | [`matching::central`], [`matching::central_rand`] |
//! | Lemma 4.2 — `MPC-Simulation` (fractional matching + cover) | [`matching::mpc_simulation`] |
//! | Lemma 5.1 — randomized rounding | [`matching::round_fractional`] |
//! | Theorem 1.2 — integral `(2+ε)` matching & cover | [`matching::integral_matching`] |
//! | Theorem 1.2 — vertex cover with self-certifying ratio | [`vertex_cover::approx_min_vertex_cover`] |
//! | Corollary 1.3 — `(1+ε)` matching | [`matching::one_plus_eps_matching`] |
//! | Corollary 1.4 — `(2+ε)` weighted matching | [`matching::weighted_matching`] |
//! | §4.4.5 — LMSV filtering fallback | [`filtering::filtering_maximal_matching`] |
//! | Baselines (§1.2) — Luby's MIS | [`baselines::luby_mis`] |
//!
//! ## Quick example
//!
//! ```
//! use mmvc_core::{Epsilon, matching, mis};
//! use mmvc_graph::generators;
//!
//! let g = generators::gnp(500, 0.05, 42)?;
//!
//! // MIS in O(log log Δ) simulated MPC rounds.
//! let mis = mis::greedy_mpc_mis(&g, &mis::GreedyMisConfig::new(1))?;
//! assert!(mis.mis.is_maximal(&g));
//!
//! // (2+ε)-approximate matching and vertex cover.
//! let eps = Epsilon::new(0.1)?;
//! let out = matching::integral_matching(
//!     &g,
//!     &matching::IntegralMatchingConfig::new(eps, 2),
//! )?;
//! assert!(out.cover.covers(&g));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod distributed;
mod epsilon;
mod error;
pub mod filtering;
pub mod matching;
pub mod mis;
#[cfg(test)]
mod proptests;
pub mod run;
pub mod session;
pub mod vertex_cover;

pub use epsilon::Epsilon;
pub use error::CoreError;

/// Index-chunk granularity for executor-parallel vertex/edge scans.
///
/// Chunk boundaries depend only on the item count and this constant —
/// never on the thread count — so per-chunk results reduce to the same
/// value under any [`mmvc_substrate::ExecutorConfig`] (sequential,
/// threaded, any pool size). Large enough that a task amortises its
/// scheduling cost, small enough that mid-sized inputs still fan out.
pub(crate) const PAR_CHUNK: usize = 1024;
