//! End-to-end integration tests: full pipelines across all workspace
//! crates, on multiple graph families, checking the paper's guarantees
//! against exact optima.

use mmvc::prelude::*;

fn eps() -> Epsilon {
    Epsilon::new(0.1).expect("valid eps")
}

/// A spread of graph families exercising different degree profiles.
fn test_graphs(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        (
            "gnp_sparse",
            generators::gnp(400, 8.0 / 400.0, seed).unwrap(),
        ),
        ("gnp_dense", generators::gnp(250, 0.4, seed).unwrap()),
        (
            "power_law",
            generators::power_law(400, 2.3, 10.0, seed).unwrap(),
        ),
        (
            "bipartite",
            generators::bipartite_gnp(200, 200, 0.05, seed).unwrap(),
        ),
        ("grid", generators::grid(20, 20)),
        (
            "star_forest",
            generators::disjoint_union(&generators::star(40), 10),
        ),
    ]
}

#[test]
fn full_mis_pipeline_all_families() {
    for seed in 0..3u64 {
        for (name, g) in test_graphs(seed) {
            let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed)).unwrap();
            assert!(out.mis.is_independent(&g), "{name} seed {seed}");
            assert!(out.mis.is_maximal(&g), "{name} seed {seed}");
            // Memory claim: every round fits in the 8n-word budget.
            assert!(
                out.trace.max_load_words() <= 8 * g.num_vertices().max(8),
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn mis_agrees_across_models() {
    // MPC and CONGESTED-CLIQUE variants simulate the same greedy prefix
    // process from the same seed.
    for seed in 0..3u64 {
        let g = generators::gnp(300, 0.2, seed).unwrap();
        let mpc = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed)).unwrap();
        let clique = clique_mis(&g, &CliqueMisConfig::new(seed)).unwrap();
        assert_eq!(mpc.prefix_phases, clique.prefix_phases, "seed {seed}");
        assert!(clique.mis.is_maximal(&g));
    }
}

#[test]
fn full_matching_pipeline_all_families() {
    for (name, g) in test_graphs(7) {
        let out = integral_matching(&g, &IntegralMatchingConfig::new(eps(), 7)).unwrap();
        // Valid matching on g.
        for e in out.matching.edges() {
            assert!(g.has_edge(e.u(), e.v()), "{name}");
        }
        // Valid cover.
        assert!(out.cover.covers(&g), "{name}");
        // 2+eps quality against the exact optimum.
        let opt = matching::blossom(&g).len();
        assert!(
            (2.0 + 0.1) * out.matching.len() as f64 >= opt as f64,
            "{name}: matched {} vs opt {opt}",
            out.matching.len()
        );
        // Duality sandwich: |M| <= opt <= |C|.
        assert!(out.matching.len() <= opt, "{name}");
        assert!(out.cover.len() >= opt, "{name}");
    }
}

#[test]
fn one_plus_eps_beats_two_plus_eps() {
    for seed in 0..3u64 {
        let g = generators::gnp(300, 0.05, seed).unwrap();
        let two = integral_matching(&g, &IntegralMatchingConfig::new(eps(), seed)).unwrap();
        let one = one_plus_eps_matching(&g, &AugmentConfig::new(eps(), seed)).unwrap();
        assert!(one.matching.len() >= two.matching.len(), "seed {seed}");
        let opt = matching::blossom(&g).len();
        assert!(
            1.1 * one.matching.len() as f64 >= opt as f64,
            "seed {seed}: {} vs {opt}",
            one.matching.len()
        );
    }
}

#[test]
fn fractional_pipeline_duality_chain() {
    // W(x) <= |M*| <= VC* <= |C| and x feasible, on every family.
    for (name, g) in test_graphs(11) {
        let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), 11)).unwrap();
        assert!(out.fractional.is_feasible(&g), "{name}");
        let opt = matching::blossom(&g).len() as f64;
        assert!(
            out.fractional.weight() <= opt + 1e-6,
            "{name}: weak duality violated"
        );
        assert!(
            out.cover.len() as f64 >= opt - 1e-6,
            "{name}: cover below matching"
        );
    }
}

#[test]
fn rounding_composes_with_simulation() {
    let g = generators::gnp(500, 0.08, 3).unwrap();
    let sim = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), 3)).unwrap();
    let m = round_fractional(&g, &sim.fractional, &sim.heavy_certificate, 9).unwrap();
    for e in m.edges() {
        assert!(g.has_edge(e.u(), e.v()));
        // Rounded edges carry positive fractional weight.
        let idx = g.edges().index_of(e).unwrap();
        assert!(sim.fractional.edge_weight(idx) > 0.0);
    }
}

#[test]
fn weighted_pipeline_on_weighted_families() {
    for seed in 0..3u64 {
        let g = generators::gnp(150, 0.1, seed).unwrap();
        let wg = weighted::WeightedGraph::with_random_weights(g, 1.0, 64.0, seed).unwrap();
        let out = weighted_matching(&wg, &WeightedMatchingConfig::new(eps(), seed)).unwrap();
        // Weight at least the unweighted maximal-matching weight under the
        // minimum edge weight: crude but model-independent sanity.
        let maximal = matching::greedy_maximal_matching(wg.graph());
        assert!(out.total_weight >= maximal.len() as f64 * 1.0 / (2.0 * 1.1) - 1e-9);
    }
}

#[test]
fn filtering_and_luby_baselines_run_everywhere() {
    for (name, g) in test_graphs(13) {
        let f = filtering_maximal_matching(&g, &FilteringConfig::new(13)).unwrap();
        assert!(f.matching.is_maximal(&g), "{name}");
        let l = luby_mis(&g, 13);
        assert!(l.mis.is_maximal(&g), "{name}");
    }
}

#[test]
fn vertex_cover_api_certificate_is_sound() {
    use mmvc::core::vertex_cover::{approx_min_vertex_cover, VertexCoverConfig};
    for (name, g) in test_graphs(17) {
        let out = approx_min_vertex_cover(&g, &VertexCoverConfig::new(eps(), 17)).unwrap();
        assert!(out.cover.covers(&g), "{name}");
        let opt = matching::blossom(&g).len();
        // The certificate upper-bounds the true ratio against |M*|, which
        // itself lower-bounds VC*.
        if opt > 0 {
            let true_ratio_vs_lb = out.cover.len() as f64 / opt as f64;
            assert!(
                true_ratio_vs_lb <= out.certified_ratio + 1e-9,
                "{name}: certificate {} below measured {}",
                out.certified_ratio,
                true_ratio_vs_lb
            );
        }
    }
}

#[test]
fn sublinear_memory_end_to_end() {
    use mmvc::core::matching::MpcMatchingConfig;
    let g = generators::gnp(600, 0.15, 19).unwrap();
    let cfg = MpcMatchingConfig::sublinear(eps(), 19, 4.0);
    let out = mpc_simulation(&g, &cfg).unwrap();
    assert!(out.cover.covers(&g));
    assert!(out.fractional.is_feasible(&g));
    assert!(out.trace.max_load_words() <= (8.0f64 / 4.0 * 600.0).ceil() as usize);
}

#[test]
fn pivot_assignment_composes_with_mis_pipeline() {
    use mmvc::graph::rng::{invert_permutation, random_permutation};
    let g = generators::power_law(300, 2.4, 9.0, 23).unwrap();
    let perm = random_permutation(300, 23);
    let ranks = invert_permutation(&perm);
    let (set, pivot) = mis::greedy_mis_with_pivots(&g, &ranks);
    assert!(set.is_maximal(&g));
    // Complement duality and pivot validity in one sweep.
    assert!(set.to_vertex_cover().covers(&g));
    for v in 0..300u32 {
        let p = pivot[v as usize];
        assert!(set.contains(p) || p == v);
    }
}

#[test]
fn deterministic_end_to_end() {
    let g = generators::power_law(300, 2.5, 8.0, 5).unwrap();
    let a = integral_matching(&g, &IntegralMatchingConfig::new(eps(), 5)).unwrap();
    let b = integral_matching(&g, &IntegralMatchingConfig::new(eps(), 5)).unwrap();
    assert_eq!(a.matching.edges(), b.matching.edges());
    assert_eq!(a.cover.members(), b.cover.members());
    assert_eq!(a.total_rounds, b.total_rounds);
}
