//! Integration tests for the unified run driver: spec → report
//! determinism (byte-identical JSON), scenario-registry seeding pins,
//! executor invariance, and the full algorithm × scenario smoke matrix.

use mmvc::core::run::{build_scenario, run, run_on, AlgorithmKind, RunReport, RunSpec};
use mmvc::graph::scenarios;
use mmvc::substrate::ExecutorConfig;
use mmvc_bench::report_json;

fn small_spec(kind: AlgorithmKind, scenario: &str) -> RunSpec {
    let mut spec = RunSpec::new(kind, scenario);
    spec.n = Some(96);
    spec.seed = 7;
    // At n ~ 100 the `8n`-word budget is not meaningfully "O(n)" and the
    // dense stress scenarios can brush against it; these tests check the
    // driver pipeline, not the asymptotic budget (the experiments do).
    spec.overrides.space_factor = Some(32.0);
    spec
}

fn canonical_json(mut report: RunReport) -> String {
    // Wall time is the single nondeterministic field by contract.
    report.wall_ms = 0.0;
    report_json(&report).render()
}

#[test]
fn same_spec_yields_byte_identical_json() {
    for kind in [
        AlgorithmKind::GreedyMis,
        AlgorithmKind::MpcMatching,
        AlgorithmKind::WeightedMatching,
    ] {
        let spec = small_spec(kind, "gnp-sparse");
        let a = canonical_json(run(&spec).unwrap());
        let b = canonical_json(run(&spec).unwrap());
        assert_eq!(a, b, "{kind} report must be deterministic");
        assert!(a.contains(&format!("\"algorithm\": \"{}\"", kind.name())));
    }
}

#[test]
fn scenario_registry_seeding_pins() {
    // (name, vertices, edges) at n = 256, seed 0xC0FFEE. These pin the
    // generator streams behind every named workload: a change here is a
    // reproducibility break for every experiment and bench artifact.
    let pins = [
        ("gnp-sparse", 256, 1009),
        ("gnp-mid", 256, 8148),
        ("gnp-dense", 256, 4028),
        ("gnm", 256, 1024),
        ("bipartite", 256, 972),
        ("power-law", 256, 974),
        ("geometric", 256, 1346),
        ("grid", 256, 480),
        ("ring-lattice", 256, 767),
        ("planted-matching", 256, 633),
        ("star-stress", 256, 252),
        ("clique-stress", 256, 3968),
        ("barabasi-albert", 256, 1014),
        ("sbm", 256, 590),
        // Scale-tier entries, pinned at the same small probe size: at
        // n = 256 every chunked generator collapses to its single-chunk
        // (historical) stream, so these values double as the proof that
        // the parallel samplers preserved the legacy streams.
        ("scale-gnp-1m", 256, 1009),
        ("scale-gnp-2m", 256, 1009),
        ("scale-gnm-1m", 256, 1024),
        ("scale-grid-1m", 256, 480),
        ("scale-ba-1m", 256, 2012),
        ("scale-bipartite-1m", 256, 972),
        ("scale-geometric-1m", 256, 1346),
        ("scale-planted-1m", 256, 633),
        ("scale-ring-1m", 256, 767),
        ("scale-gnp-16m", 256, 1009),
        ("scale-gnm-16m", 256, 1024),
    ];
    assert_eq!(
        pins.len(),
        scenarios::all().len(),
        "pin every registered scenario"
    );
    for (name, n, m) in pins {
        let g = scenarios::get(name)
            .unwrap_or_else(|| panic!("scenario {name} vanished"))
            .build_with(256, 0xC0FFEE)
            .unwrap();
        assert_eq!(g.num_vertices(), n, "{name} vertex count moved");
        assert_eq!(g.num_edges(), m, "{name} edge count moved");
    }
}

#[test]
fn every_algorithm_runs_every_small_scenario() {
    // The acceptance matrix: every kind × every registered scenario
    // through the one run(spec) entry point, witnesses validated.
    for kind in AlgorithmKind::ALL {
        for sc in scenarios::all() {
            let spec = small_spec(kind, sc.name);
            let report = run(&spec).unwrap_or_else(|e| panic!("{kind} on {} failed: {e}", sc.name));
            assert!(report.ok(), "{kind} on {} did not validate", sc.name);
            assert!(!report.witnesses.is_empty(), "{kind} emitted no witness");
        }
    }
}

#[test]
fn executor_choice_never_changes_a_report() {
    // Sequential vs Threaded{2} must agree byte-for-byte (minus wall
    // time) for every algorithm kind — the round engine's determinism
    // contract surfaced at the driver level.
    for kind in AlgorithmKind::ALL {
        let mut seq = small_spec(kind, "gnp-sparse");
        seq.executor = ExecutorConfig::sequential();
        let mut thr = small_spec(kind, "gnp-sparse");
        thr.executor = ExecutorConfig::with_threads(2);
        let a = canonical_json(run(&seq).unwrap());
        let b = canonical_json(run(&thr).unwrap());
        assert_eq!(a, b, "{kind} diverged across executors");
    }
}

#[test]
fn run_on_matches_run_for_registry_graphs() {
    let spec = small_spec(AlgorithmKind::LubyMis, "power-law");
    let g = build_scenario(&spec).unwrap();
    let via_run = canonical_json(run(&spec).unwrap());
    let via_run_on = canonical_json(run_on(&g, "power-law", &spec).unwrap());
    assert_eq!(via_run, via_run_on);
}

#[test]
fn budget_violation_fails_the_run_but_keeps_the_report() {
    let mut spec = small_spec(AlgorithmKind::GreedyMis, "gnp-sparse");
    spec.budget.max_rounds = Some(0);
    let report = run(&spec).unwrap();
    assert!(!report.ok());
    assert!(report.witnesses_valid(), "witness itself is still fine");
    assert_eq!(report.budget_violations.len(), 1);
    assert!(report.budget_violations[0].contains("exceed budget 0"));
}

#[test]
fn max_n_admission_cap_refuses_scale_specs() {
    // The cap refuses *before* building: a scale scenario's default size
    // trips it even when the spec itself names no `n`.
    let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "scale-gnp-1m");
    spec.budget.max_n = Some(1 << 17);
    let err = run(&spec).unwrap_err().to_string();
    assert!(err.contains("admission cap"), "got: {err}");
    assert!(err.contains("1048576"), "names the offending size: {err}");

    // Overriding n below the cap admits the same scenario.
    spec.n = Some(4096);
    spec.overrides.space_factor = Some(32.0);
    assert!(run(&spec).unwrap().ok());

    // The backstop also guards caller-supplied graphs (the file path).
    let g = build_scenario(&small_spec(AlgorithmKind::GreedyMis, "gnp-sparse")).unwrap();
    let mut capped = small_spec(AlgorithmKind::GreedyMis, "gnp-sparse");
    capped.budget.max_n = Some(10);
    let err = run_on(&g, "gnp-sparse", &capped).unwrap_err().to_string();
    assert!(err.contains("admission cap"), "got: {err}");
}

#[test]
fn scale_scenario_runs_through_the_driver_at_small_n() {
    // Scale-tier names are full registry citizens of the run driver.
    let report = run(&small_spec(AlgorithmKind::GreedyMis, "scale-gnp-1m")).unwrap();
    assert!(report.ok());
    assert_eq!(report.n, 96);
}

#[test]
fn unknown_scenario_is_a_clean_error() {
    let spec = RunSpec::new(AlgorithmKind::GreedyMis, "never-registered");
    let err = run(&spec).unwrap_err().to_string();
    assert!(err.contains("unknown scenario"), "got: {err}");
}

#[test]
fn graph_file_specs_run_through_the_driver() {
    // `--graph-file` workloads share the run(spec) entry point with the
    // registry scenarios: same validation, same deterministic JSON.
    let path = std::env::temp_dir().join("mmvc_run_driver_graph_file.txt");
    let path_str = path.to_str().unwrap();
    let g = build_scenario(&small_spec(AlgorithmKind::GreedyMis, "gnp-sparse")).unwrap();
    let mut buf = Vec::new();
    mmvc::graph::io::write_edge_list(&g, &mut buf).unwrap();
    std::fs::write(&path, &buf).unwrap();

    let mut spec = RunSpec::from_file(AlgorithmKind::GreedyMis, path_str);
    spec.seed = 7;
    let a = canonical_json(run(&spec).unwrap());
    let b = canonical_json(run(&spec).unwrap());
    assert_eq!(a, b, "file workloads must be byte-deterministic too");
    assert!(a.contains(&format!("\"scenario\": \"file:{path_str}\"")));

    // Byte-identical to running the same graph via run_on.
    let direct = canonical_json(run_on(&g, &format!("file:{path_str}"), &spec).unwrap());
    assert_eq!(a, direct);
    std::fs::remove_file(&path).ok();
}
