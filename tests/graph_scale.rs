//! Builder-equivalence and scale-tier pins: the counting-sort CSR
//! constructor must be byte-identical to the historical sort+dedup build
//! path on every seeded scenario, across executors, including at the
//! million-vertex tier — and the edge-case behaviour (duplicates,
//! self-loops) must be preserved exactly.

use mmvc::graph::{scenarios, Edge, Graph, GraphBuilder, VertexId};
use mmvc::substrate::{ExecutorConfig, ScratchPool};

const SEED: u64 = 0xC0FFEE;

/// The historical build path, reimplemented verbatim: global
/// `sort_unstable + dedup` over the canonical edge list, then degree
/// count → prefix offsets → scatter (u-side in order, v-side sorted).
/// Returns `(offsets, adj)` — the byte-level CSR reference.
fn legacy_csr(n: usize, mut edges: Vec<Edge>) -> (Vec<usize>, Vec<VertexId>) {
    edges.sort_unstable();
    edges.dedup();
    let mut degree = vec![0usize; n];
    for e in &edges {
        degree[e.u() as usize] += 1;
        degree[e.v() as usize] += 1;
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut adj = vec![0 as VertexId; 2 * edges.len()];
    let mut cursor = offsets.clone();
    for e in &edges {
        adj[cursor[e.u() as usize]] = e.v();
        cursor[e.u() as usize] += 1;
        adj[cursor[e.v() as usize]] = e.u();
        cursor[e.v() as usize] += 1;
    }
    for v in 0..n {
        adj[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    (offsets, adj)
}

/// Raw (duplicate-laden) edges to feed both build paths: every scenario
/// edge once, plus every third edge repeated with flipped endpoints.
fn raw_edges_with_duplicates(g: &Graph) -> Vec<Edge> {
    let mut raw = Vec::with_capacity(g.num_edges() * 4 / 3 + 1);
    for (i, e) in g.edges().iter().enumerate() {
        raw.push(e);
        if i % 3 == 0 {
            raw.push(Edge::new(e.v(), e.u()));
        }
    }
    raw
}

#[test]
fn counting_sort_matches_legacy_build_on_all_seeded_scenarios() {
    // The builder-equivalence pin: for every base-tier scenario at the
    // pinned probe size, the counting-sort CSR constructor produces the
    // same bytes as the historical path, duplicates and all.
    for sc in scenarios::base() {
        let g = sc.build_with(256, SEED).unwrap();
        let raw = raw_edges_with_duplicates(&g);
        let (offsets, adj) = legacy_csr(g.num_vertices(), raw.clone());
        let mut b = GraphBuilder::with_capacity(g.num_vertices(), raw.len());
        b.extend_edges(raw).unwrap();
        let rebuilt = b.build();
        assert_eq!(rebuilt.csr_offsets(), &offsets[..], "{} offsets", sc.name);
        assert_eq!(rebuilt.csr_adjacency(), &adj[..], "{} adjacency", sc.name);
        assert_eq!(rebuilt, g, "{} graph identity", sc.name);
    }
}

#[test]
fn counting_sort_matches_legacy_build_on_chunked_path() {
    // Enough raw edges to force the two-pass chunked build, spanning
    // several vertex ranges; compare against the legacy reference under
    // every executor.
    let n = 70_000usize; // > 2 vertex ranges of 2^15
    let mut raw = Vec::new();
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    while raw.len() < 80_000 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((s >> 33) % n as u64) as u32;
        let v = ((s >> 11) % n as u64) as u32;
        if u != v {
            raw.push(Edge::new(u, v));
            if raw.len() % 4 == 0 {
                raw.push(Edge::new(v, u)); // cross-chunk duplicate
            }
        }
    }
    let (offsets, adj) = legacy_csr(n, raw.clone());
    for exec in [
        ExecutorConfig::sequential(),
        ExecutorConfig::with_threads(2),
        ExecutorConfig::with_threads(4),
    ] {
        let mut b = GraphBuilder::with_capacity(n, raw.len());
        b.extend_edges(raw.clone()).unwrap();
        let g = b.build_with(&exec);
        assert_eq!(g.csr_offsets(), &offsets[..], "{exec:?}");
        assert_eq!(g.csr_adjacency(), &adj[..], "{exec:?}");
    }
}

#[test]
fn sequential_vs_threaded_graph_equality_at_n_2_20() {
    // The scale pin: a million-vertex graph (generator + builder both on
    // their chunked paths) must be byte-identical across executors.
    let sc = scenarios::get("scale-gnp-1m").unwrap();
    let n = 1 << 20;
    let seq = sc
        .build_with_exec(n, SEED, &ExecutorConfig::sequential())
        .unwrap();
    assert_eq!(seq.num_vertices(), n);
    assert!(seq.num_edges() > 3_000_000, "average degree ~8 at n = 2^20");
    for threads in [2, 4] {
        let thr = sc
            .build_with_exec(n, SEED, &ExecutorConfig::with_threads(threads))
            .unwrap();
        assert_eq!(
            seq.csr_offsets(),
            thr.csr_offsets(),
            "offsets diverged at {threads} threads"
        );
        assert_eq!(
            seq.csr_adjacency(),
            thr.csr_adjacency(),
            "adjacency diverged at {threads} threads"
        );
    }
}

#[test]
fn warm_arena_rebuilds_allocate_zero_fresh_bytes() {
    // The scratch-arena pin behind BENCH_scale's allocation columns:
    // after one warm-up build at the widest thread count, a sequential
    // rebuild of the same workload allocates exactly zero fresh buffer
    // bytes — the pool's shelves already hold every counting/bucket/
    // staging buffer the build needs. Threaded rebuilds may race a
    // handful of concurrent takes past the shelf supply, so they get a
    // small transient margin (well under the ≥10× reduction BENCH_scale
    // asserts); everything else must come from the arena.
    let sc = scenarios::get("scale-gnp-1m").unwrap();
    let n = 1 << 17;
    let pool = ScratchPool::new();
    let warmup = sc
        .build_with_exec(
            n,
            SEED,
            &ExecutorConfig::with_threads(4).with_scratch(&pool),
        )
        .unwrap();
    let cold = pool.stats().allocated_bytes;
    assert!(cold > 0, "cold build must populate the arena");
    for threads in [1usize, 2, 4] {
        let exec = if threads == 1 {
            ExecutorConfig::sequential().with_scratch(&pool)
        } else {
            ExecutorConfig::with_threads(threads).with_scratch(&pool)
        };
        pool.reset_stats();
        let rebuilt = sc.build_with_exec(n, SEED, &exec).unwrap();
        let stats = pool.stats();
        if threads == 1 {
            assert_eq!(
                stats.allocated_bytes, 0,
                "warm sequential rebuild allocated fresh bytes \
                 ({} allocations)",
                stats.allocations
            );
        } else {
            assert!(
                10 * stats.allocated_bytes <= cold,
                "warm rebuild at {threads} threads allocated {} fresh bytes \
                 vs {cold} cold — arena not reused",
                stats.allocated_bytes
            );
        }
        assert!(stats.reuses > 0, "rebuild must draw from the arena");
        assert_eq!(rebuilt, warmup, "pooling must not change the graph");
    }
}

#[test]
fn threaded_build_never_allocates_meaningfully_more_than_sequential() {
    // The parallel-build regression pin: per-chunk buffer churn (a fresh
    // Vec per chunk per pass, roughly 2× the sequential total) is what
    // made t2/t4 slower than seq at the million-vertex tier. With the
    // arena in place a cold threaded build allocates the same set of
    // buffers as a cold sequential build, plus at most a sliver of
    // transient top-up when concurrent takes outrun the shelves — pinned
    // here at 5%, far below the churn this test exists to catch.
    let sc = scenarios::get("scale-gnp-1m").unwrap();
    let n = 1 << 17;
    let cold_bytes = |exec: ExecutorConfig| {
        let pool = ScratchPool::new();
        sc.build_with_exec(n, SEED, &exec.with_scratch(&pool))
            .unwrap();
        pool.stats().allocated_bytes
    };
    let seq = cold_bytes(ExecutorConfig::sequential());
    for threads in [2usize, 4] {
        let thr = cold_bytes(ExecutorConfig::with_threads(threads));
        assert!(
            thr <= seq + seq / 20,
            "cold build at {threads} threads allocated {thr} bytes vs {seq} sequential"
        );
    }
}

#[test]
fn duplicate_and_self_loop_edge_cases_preserved() {
    // Duplicates merge (both build paths), self-loops are rejected at
    // staging time — exactly the historical contract.
    let g = Graph::from_edges(4, vec![(0, 1), (1, 0), (0, 1), (2, 3), (3, 2)]).unwrap();
    assert_eq!(g.num_edges(), 2);

    let mut b = GraphBuilder::new(4);
    assert!(b.add_edge(2, 2).is_err(), "self-loop must be rejected");
    assert!(b.add_edge(0, 4).is_err(), "out-of-range must be rejected");

    // A duplicate-heavy chunked build still dedups to the simple graph.
    let n = 40_000usize;
    let mut raw = Vec::new();
    for i in 0..n as u32 - 1 {
        // The same path edge staged three times, in both orientations.
        raw.push(Edge::new(i, i + 1));
        raw.push(Edge::new(i + 1, i));
        raw.push(Edge::new(i, i + 1));
    }
    let mut b = GraphBuilder::with_capacity(n, raw.len());
    b.extend_edges(raw).unwrap();
    let g = b.build_with(&ExecutorConfig::with_threads(4));
    assert_eq!(g.num_edges(), n - 1, "path edges dedup to n-1");
    assert_eq!(g.max_degree(), 2);
}

#[test]
fn edge_view_is_consistent_with_csr_at_scale() {
    // The on-demand edge view must agree with the CSR arrays it is
    // derived from: count, order, random access, rank queries.
    let g = scenarios::get("scale-ba-1m")
        .unwrap()
        .build_with(30_000, SEED)
        .unwrap();
    let edges: Vec<Edge> = g.edges().iter().collect();
    assert_eq!(edges.len(), g.num_edges());
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "sorted, no duplicates"
    );
    for probe in [0usize, 1, edges.len() / 2, edges.len() - 1] {
        assert_eq!(g.edges().get(probe), edges[probe]);
        assert_eq!(g.edges().index_of(&edges[probe]), Some(probe));
    }
    // Range slicing agrees with the materialized list.
    let mid = edges.len() / 2;
    let ranged: Vec<Edge> = g.edges().range(mid..(mid + 100).min(edges.len())).collect();
    assert_eq!(ranged, edges[mid..(mid + 100).min(edges.len())]);
}
