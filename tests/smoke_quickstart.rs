//! Smoke test: the quickstart path from the README, end-to-end on a
//! small seed-fixed graph — generate, run the two headline algorithms,
//! and check every witness with the exact validators. If this test
//! passes, a fresh checkout can reproduce the paper's pipeline.

use mmvc::prelude::*;

const SEED: u64 = 42;

#[test]
fn quickstart_path_end_to_end() {
    // gnp → a small fixed graph.
    let g = generators::gnp(400, 0.05, SEED).expect("valid p");
    assert_eq!(g.num_vertices(), 400);
    assert!(g.num_edges() > 0, "fixture must be non-trivial");

    // greedy_mpc_mis → a maximal independent set within budget.
    let mis = greedy_mpc_mis(&g, &GreedyMisConfig::new(SEED)).expect("fits budget");
    assert!(mis.mis.is_independent(&g));
    assert!(mis.mis.is_maximal(&g));

    // The outcome reports its substrate usage through the unified trace.
    assert!(mis.trace.rounds() > 0);
    assert!(
        mis.trace.max_load_words() <= 8 * g.num_vertices(),
        "Õ(n) memory claim: peak load {} exceeds 8n",
        mis.trace.max_load_words()
    );

    // integral_matching → a valid matching plus a covering vertex cover.
    let eps = Epsilon::new(0.1).expect("valid eps");
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, SEED)).expect("fits budget");
    for e in out.matching.edges() {
        assert!(g.has_edge(e.u(), e.v()), "matching uses only graph edges");
    }
    assert!(out.cover.covers(&g));

    // Validators: the exact optimum sandwiches both witnesses.
    let optimum = matching::blossom(&g).len();
    assert!(out.matching.len() <= optimum);
    assert!(
        (2.0 + eps.get()) * out.matching.len() as f64 + 1e-9 >= optimum as f64,
        "matching {} vs optimum {optimum} violates (2+eps)",
        out.matching.len()
    );
    assert!(out.cover.len() >= optimum, "cover below matching bound");

    // Determinism: the whole path reproduces exactly from the seed.
    let mis2 = greedy_mpc_mis(&g, &GreedyMisConfig::new(SEED)).expect("fits budget");
    assert_eq!(mis.mis.len(), mis2.mis.len());
    assert_eq!(mis.trace, mis2.trace);
    let out2 = integral_matching(&g, &IntegralMatchingConfig::new(eps, SEED)).expect("fits budget");
    assert_eq!(out.matching.len(), out2.matching.len());

    // …including across executors (the README's ExecutorConfig example):
    // a sequential run is byte-identical to the threaded default.
    let mut cfg = GreedyMisConfig::new(SEED);
    cfg.executor = ExecutorConfig::sequential();
    let same = greedy_mpc_mis(&g, &cfg).expect("fits budget");
    assert_eq!(same.mis.members(), mis.mis.members());
    assert_eq!(same.trace, mis.trace);
}

#[test]
fn quickstart_substrate_trait_view() {
    // The same trace answers through the Substrate trait object — the
    // harness's one code path for claimed-vs-measured reporting.
    let g = generators::gnp(400, 0.05, SEED).expect("valid p");
    let mis = greedy_mpc_mis(&g, &GreedyMisConfig::new(SEED)).expect("fits budget");
    let s: &dyn Substrate = &mis.trace;
    assert_eq!(s.rounds(), mis.trace.rounds());
    assert_eq!(s.max_load_words(), mis.trace.max_load_words());
    assert!(s.total_words() >= s.max_load_words());
}
