//! Regression pins: every algorithm is deterministic in its seed, so a
//! handful of exact values freeze the behaviour of the whole pipeline.
//! If a refactor changes any of these, that is a *behaviour* change and
//! must be a conscious decision (update the pins in the same commit).
//!
//! Pins are baselined against the vendored `rand` shim (`vendor/rand`,
//! xoshiro256++ as in rand 0.8.5), measured when the workspace first
//! became buildable.

use mmvc::prelude::*;

const SEED: u64 = 0xC0FFEE;

fn fixture() -> Graph {
    generators::gnp(512, 0.05, SEED).expect("valid p")
}

#[test]
fn pin_graph_generation() {
    let g = fixture();
    assert_eq!(g.num_vertices(), 512);
    assert_eq!(g.num_edges(), 6421);
    assert_eq!(g.max_degree(), 44);
}

#[test]
fn pin_sequential_greedy_mis() {
    let s = mis::randomized_greedy_mis(&fixture(), SEED);
    assert_eq!(s.len(), 63);
}

#[test]
fn pin_mpc_mis() {
    let out = greedy_mpc_mis(&fixture(), &GreedyMisConfig::new(SEED)).unwrap();
    assert_eq!(out.mis.len(), 66);
    assert_eq!(
        out.prefix_phases, 0,
        "deg 44 < log² 512 = 81: no prefix phases"
    );
}

#[test]
fn pin_luby() {
    let out = luby_mis(&fixture(), SEED);
    assert_eq!(out.mis.len(), 71);
    assert_eq!(out.rounds, 5);
}

#[test]
fn pin_central() {
    let eps = Epsilon::new(0.1).unwrap();
    let out = central(&fixture(), eps);
    assert_eq!(out.iterations, 50);
    assert!((out.fractional.weight() - 207.04415).abs() < 1e-4);
    assert_eq!(out.cover.len(), 452);
}

#[test]
fn pin_mpc_simulation() {
    let eps = Epsilon::new(0.1).unwrap();
    let out = mpc_simulation(&fixture(), &MpcMatchingConfig::new(eps, SEED)).unwrap();
    assert_eq!(out.phases, 0, "deg 44 below d_min: direct simulation");
    assert_eq!(out.cover.len(), 478);
    assert!((out.fractional.weight() - 174.63065).abs() < 1e-4);
}

#[test]
fn pin_mpc_mis_invariant_under_executor() {
    // The engine's determinism contract meets the pins: the exact values
    // pinned above must hold under every executor, not just the default.
    use mmvc::substrate::ExecutorConfig;
    for exec in [
        ExecutorConfig::sequential(),
        ExecutorConfig::with_threads(2),
        ExecutorConfig::with_threads(8),
    ] {
        let mut cfg = GreedyMisConfig::new(SEED);
        cfg.executor = exec.clone();
        let out = greedy_mpc_mis(&fixture(), &cfg).unwrap();
        assert_eq!(out.mis.len(), 66, "pin moved under {exec:?}");
    }
}

#[test]
fn pin_clique_mis_invariant_under_executor() {
    use mmvc::substrate::ExecutorConfig;
    let mut baseline = None;
    for exec in [
        ExecutorConfig::sequential(),
        ExecutorConfig::with_threads(2),
        ExecutorConfig::with_threads(8),
    ] {
        let mut cfg = CliqueMisConfig::new(SEED);
        cfg.executor = exec.clone();
        let out = clique_mis(&fixture(), &cfg).unwrap();
        assert_eq!(out.mis.len(), 72);
        match &baseline {
            None => baseline = Some((out.mis.members().to_vec(), out.trace)),
            Some((members, trace)) => {
                assert_eq!(out.mis.members(), &members[..], "members moved");
                assert_eq!(&out.trace, trace, "trace moved under {exec:?}");
            }
        }
    }
}

#[test]
fn pin_integral_matching() {
    let eps = Epsilon::new(0.1).unwrap();
    let out = integral_matching(&fixture(), &IntegralMatchingConfig::new(eps, SEED)).unwrap();
    let opt = matching::blossom(&fixture()).len();
    assert_eq!(opt, 256);
    assert_eq!(out.matching.len(), 246);
}
