//! Integration tests for the *model accounting*: the substrates must
//! verify the paper's round/memory/bandwidth claims rather than assume
//! them, and must fail loudly when an algorithm is run outside the
//! claimed regime.

use mmvc::core::filtering::{filtering_maximal_matching, FilteringConfig};
use mmvc::core::matching::{mpc_simulation, MpcMatchingConfig, PhaseSchedule};
use mmvc::core::mis::{clique_mis, greedy_mpc_mis, CliqueMisConfig, GreedyMisConfig};
use mmvc::core::{CoreError, Epsilon};
use mmvc::graph::generators;
use mmvc::mpc::MpcError;
use mmvc::substrate::ExecutorConfig;

fn eps() -> Epsilon {
    Epsilon::new(0.1).expect("valid eps")
}

/// The round engine's determinism contract: `Sequential` and
/// `Threaded{1,2,8}` executors on every ported algorithm.
fn executors() -> [ExecutorConfig; 4] {
    [
        ExecutorConfig::sequential(),
        ExecutorConfig::with_threads(1),
        ExecutorConfig::with_threads(2),
        ExecutorConfig::with_threads(8),
    ]
}

#[test]
fn mis_memory_scales_linearly_not_quadratically() {
    // Doubling n roughly doubles the max machine load (O(n) words), even
    // though the edge count quadruples in the dense regime.
    let g1 = generators::gnp(1024, 0.25, 1).unwrap();
    let g2 = generators::gnp(2048, 0.25, 1).unwrap();
    let l1 = greedy_mpc_mis(&g1, &GreedyMisConfig::new(1))
        .unwrap()
        .trace
        .max_load_words();
    let l2 = greedy_mpc_mis(&g2, &GreedyMisConfig::new(1))
        .unwrap()
        .trace
        .max_load_words();
    assert!(
        (l2 as f64) < 4.0 * l1 as f64,
        "load grew superlinearly: {l1} -> {l2} when n doubled"
    );
    assert!(l2 <= 8 * 2048, "load exceeds the 8n budget");
}

#[test]
fn matching_rounds_grow_sublogarithmically() {
    // Rounds at n and at n² should be within a small additive band —
    // log-log growth — while central-style iteration counts would double.
    let small = generators::gnp(256, 0.25, 2).unwrap();
    let large = generators::gnp(4096, 0.25, 2).unwrap();
    let r_small = mpc_simulation(&small, &MpcMatchingConfig::new(eps(), 2))
        .unwrap()
        .trace
        .rounds();
    let r_large = mpc_simulation(&large, &MpcMatchingConfig::new(eps(), 2))
        .unwrap()
        .trace
        .rounds();
    assert!(
        r_large <= r_small + 24,
        "rounds {r_small} -> {r_large}: not log-log-ish when n grew 16x"
    );
}

#[test]
fn starved_budget_fails_with_memory_error_not_wrong_answer() {
    let g = generators::gnp(1024, 0.3, 3).unwrap();
    let mut cfg = MpcMatchingConfig::new(eps(), 3);
    cfg.space_factor = 0.02;
    match mpc_simulation(&g, &cfg) {
        Err(CoreError::Mpc(MpcError::MemoryExceeded {
            attempted_words,
            budget_words,
            ..
        })) => {
            assert!(attempted_words > budget_words);
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
}

#[test]
fn paper_schedule_matches_practical_on_quality() {
    // Both schedules must produce valid, comparable-quality outputs; they
    // differ only in round structure.
    let g = generators::gnp(400, 0.1, 4).unwrap();
    let practical = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), 4)).unwrap();
    let mut paper_cfg = MpcMatchingConfig::new(eps(), 4);
    paper_cfg.schedule = PhaseSchedule::Paper;
    let paper = mpc_simulation(&g, &paper_cfg).unwrap();
    assert!(practical.cover.covers(&g));
    assert!(paper.cover.covers(&g));
    let (wp, wq) = (practical.fractional.weight(), paper.fractional.weight());
    assert!(
        (wp - wq).abs() <= 0.35 * wq.max(1.0),
        "schedules diverge too much: {wp} vs {wq}"
    );
}

#[test]
fn trace_per_round_is_consistent() {
    let g = generators::gnp(512, 0.2, 5).unwrap();
    let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps(), 5)).unwrap();
    let trace = &out.trace;
    assert_eq!(trace.per_round().len(), trace.rounds());
    for (i, r) in trace.per_round().iter().enumerate() {
        assert_eq!(r.round, i + 1, "rounds must be numbered consecutively");
        assert!(r.max_load_words <= r.total_words);
    }
    assert_eq!(
        trace.total_words(),
        trace
            .per_round()
            .iter()
            .map(|r| r.total_words)
            .sum::<usize>()
    );
}

#[test]
fn engine_determinism_mis_on_both_substrates() {
    // Byte-identical outcomes AND byte-identical traces for every
    // executor, on a graph dense enough that the prefix-phase loop (the
    // parallelised per-machine work) genuinely runs.
    let g = generators::gnp(1024, 0.2, 7).unwrap();

    let mut mpc_baseline = None;
    let mut clique_baseline = None;
    for exec in executors() {
        let mut cfg = GreedyMisConfig::new(7);
        cfg.executor = exec.clone();
        let out = greedy_mpc_mis(&g, &cfg).unwrap();
        assert!(out.prefix_phases >= 1, "phase loop must run");
        let key = (
            out.mis.members().to_vec(),
            out.prefix_phases,
            out.phase_edge_words.clone(),
            out.trace.clone(),
        );
        match &mpc_baseline {
            None => mpc_baseline = Some(key),
            Some(base) => assert_eq!(&key, base, "MPC MIS diverged under {exec:?}"),
        }

        let mut cfg = CliqueMisConfig::new(7);
        cfg.executor = exec.clone();
        let out = clique_mis(&g, &cfg).unwrap();
        let key = (out.mis.members().to_vec(), out.prefix_phases, out.trace);
        match &clique_baseline {
            None => clique_baseline = Some(key),
            Some(base) => assert_eq!(&key, base, "clique MIS diverged under {exec:?}"),
        }
    }
}

#[test]
fn engine_determinism_matching_and_filtering() {
    // Same contract for MPC-Simulation (with phases) and the LMSV
    // filtering baseline: identical freeze schedules, fractional
    // matchings, matchings, and traces under every executor.
    let g = generators::gnp(1024, 0.2, 11).unwrap();

    let mut sim_baseline = None;
    let mut filter_baseline = None;
    for exec in executors() {
        let mut cfg = MpcMatchingConfig::new(eps(), 11);
        cfg.executor = exec.clone();
        let out = mpc_simulation(&g, &cfg).unwrap();
        assert!(out.phases >= 1, "phase loop must run");
        let key = (
            out.freeze_iteration.clone(),
            out.removed.clone(),
            out.fractional.clone(),
            out.trace.clone(),
        );
        match &sim_baseline {
            None => sim_baseline = Some(key),
            Some(base) => assert_eq!(&key, base, "MPC-Simulation diverged under {exec:?}"),
        }

        let mut cfg = FilteringConfig::new(11);
        cfg.executor = exec.clone();
        let out = filtering_maximal_matching(&g, &cfg).unwrap();
        assert!(out.filter_rounds >= 1, "filtering must iterate");
        let key = (
            out.matching.edges().to_vec(),
            out.filter_rounds,
            out.trace.clone(),
        );
        match &filter_baseline {
            None => filter_baseline = Some(key),
            Some(base) => assert_eq!(&key, base, "filtering diverged under {exec:?}"),
        }
    }
}

#[test]
fn clique_bandwidth_budget_binds() {
    use mmvc::clique::{CliqueError, CliqueNetwork};
    let mut net = CliqueNetwork::new(64).unwrap();
    // A full all-to-all of 3 words costs exactly 3 rounds at 1 word/pair.
    assert_eq!(net.all_to_all(3).unwrap(), 3);
    // Oversubscribing a single link in one round fails.
    let err = net
        .round(|r| {
            r.send(0, 1, 1)?;
            r.send(0, 1, 1)
        })
        .unwrap_err();
    assert!(matches!(err, CliqueError::BandwidthExceeded { .. }));
}
