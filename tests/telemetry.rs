//! Integration tests for the telemetry subsystem's out-of-band
//! contract: attaching a recording sink — to any executor shape — must
//! never change a canonical report byte, a cache key, or a scenario
//! seeding pin (span timestamps follow the same rule as `wall_ms`), and
//! the Chrome-trace exporter must emit well-formed, properly nested
//! span documents.

use mmvc::core::run::{run, AlgorithmKind, RunReport, RunSpec};
use mmvc::graph::scenarios;
use mmvc::serve::cache_key;
use mmvc::substrate::{EventKind, ExecutorConfig, Telemetry};
use mmvc_bench::{report_json, tracefmt, Json};

fn small_spec(kind: AlgorithmKind, scenario: &str) -> RunSpec {
    let mut spec = RunSpec::new(kind, scenario);
    spec.n = Some(96);
    spec.seed = 7;
    // Same allowance as run_driver.rs: at n ~ 100 the dense stress
    // scenarios brush the `O(n)`-words budget these tests do not probe.
    spec.overrides.space_factor = Some(32.0);
    spec
}

fn canonical_json(mut report: RunReport) -> String {
    report.wall_ms = 0.0;
    report_json(&report).render()
}

/// The tentpole pin: for every algorithm kind × a scenario cross
/// section, the canonical report bytes and the serve-layer cache key
/// are byte-identical with telemetry off, telemetry recording, and
/// across `Sequential`/`Threaded{2,4}` with telemetry recording.
#[test]
fn reports_and_cache_keys_are_telemetry_invariant() {
    let scenarios = ["gnp-sparse", "power-law", "planted-matching"];
    for kind in AlgorithmKind::ALL {
        for scenario in scenarios {
            let base = small_spec(kind, scenario);
            let baseline = canonical_json(run(&base).unwrap());
            let baseline_key = cache_key(&base, None);

            let executors = [
                ExecutorConfig::sequential(),
                ExecutorConfig::with_threads(2),
                ExecutorConfig::with_threads(4),
            ];
            for executor in executors {
                let telemetry = Telemetry::recording();
                let mut spec = small_spec(kind, scenario);
                spec.executor = executor.with_telemetry(&telemetry);
                assert_eq!(
                    cache_key(&spec, None),
                    baseline_key,
                    "{kind}/{scenario}: cache key must ignore telemetry and executor"
                );
                let traced = canonical_json(run(&spec).unwrap());
                assert_eq!(
                    traced, baseline,
                    "{kind}/{scenario}: canonical bytes must not depend on telemetry"
                );
                assert!(
                    !telemetry.drain().is_empty(),
                    "{kind}/{scenario}: the sink must actually have recorded"
                );
            }
        }
    }
}

/// Scenario seeding is untouched by a recording sink: every registered
/// scenario builds the same `(n, m)` graph with telemetry on and off.
#[test]
fn scenario_seeding_pins_survive_telemetry() {
    for sc in scenarios::all() {
        let plain = sc
            .build_with(128, 0xC0FFEE)
            .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        let telemetry = Telemetry::recording();
        let exec = ExecutorConfig::sequential().with_telemetry(&telemetry);
        let traced = sc
            .build_with_exec(128, 0xC0FFEE, &exec)
            .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        assert_eq!(plain.num_vertices(), traced.num_vertices(), "{}", sc.name);
        assert_eq!(plain.num_edges(), traced.num_edges(), "{}", sc.name);
        assert!(
            telemetry
                .drain()
                .iter()
                .any(|e| e.name == "scenario.generate"),
            "{}: generation must emit its span",
            sc.name
        );
    }
}

/// A traced run exports a well-formed Chrome Trace Event document with
/// the spans the acceptance criteria name (round, build) and sane
/// nesting: every span's parent, when present in the document, fully
/// contains it in time on the same thread.
#[test]
fn chrome_trace_export_is_well_formed_and_nested() {
    let telemetry = Telemetry::recording();
    let mut spec = small_spec(AlgorithmKind::GreedyMis, "gnp-sparse");
    spec.executor = ExecutorConfig::sequential().with_telemetry(&telemetry);
    run(&spec).unwrap();
    let events = telemetry.drain();

    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"build"), "missing build span: {names:?}");
    assert!(names.contains(&"round"), "missing round span: {names:?}");
    assert!(names.contains(&"algorithm"), "{names:?}");

    // Spans nest: a child starts no earlier and ends no later than its
    // parent (same thread, parent recorded by the guard stack).
    let span_by_id = |id: u64| {
        events
            .iter()
            .find(|e| e.kind == EventKind::Span && e.id == id)
    };
    let mut checked = 0;
    for e in events.iter().filter(|e| e.kind == EventKind::Span) {
        if e.parent == 0 {
            continue;
        }
        let Some(parent) = span_by_id(e.parent) else {
            continue;
        };
        assert_eq!(parent.tid, e.tid, "span {} nests across threads", e.name);
        assert!(
            parent.start_ns <= e.start_ns
                && e.start_ns + e.dur_ns <= parent.start_ns + parent.dur_ns,
            "span {} not contained in its parent {}",
            e.name,
            parent.name
        );
        checked += 1;
    }
    assert!(checked > 0, "at least one nested span must exist");

    // The exported document parses back and keeps the trace shape.
    let doc = tracefmt::chrome_trace(&events);
    let parsed = Json::parse(&doc.render()).expect("exporter emits valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert_eq!(trace_events.len(), events.len());
    for e in trace_events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        assert!(ph == "X" || ph == "C", "unexpected phase {ph}");
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        }
    }
}

/// The disabled handle records nothing and costs nothing to clone or
/// query — the default path every non-traced run takes.
#[test]
fn disabled_telemetry_is_inert() {
    let telemetry = Telemetry::disabled();
    assert!(!telemetry.is_enabled());
    telemetry.counter("never", 1);
    {
        let _span = telemetry.span("never");
    }
    assert!(!telemetry.has_events());
    assert!(telemetry.drain().is_empty());

    let mut spec = small_spec(AlgorithmKind::MpcMatching, "gnp-sparse");
    spec.executor = ExecutorConfig::sequential().with_telemetry(&telemetry);
    run(&spec).unwrap();
    assert!(!telemetry.has_events(), "disabled sinks never buffer");
}

/// Distributed runs are telemetry-instrumented the same way: every
/// barrier round emits a `net.round` span tagged with the bytes sent
/// and received on the wire, one span per metered round.
#[test]
fn distributed_runs_emit_net_round_spans() {
    use mmvc::core::distributed::{run_distributed, DistOptions};

    let telemetry = Telemetry::recording();
    let mut spec = small_spec(AlgorithmKind::GreedyMis, "gnp-sparse");
    spec.executor = ExecutorConfig::sequential().with_telemetry(&telemetry);
    let out = run_distributed(&spec, &DistOptions::threads(3)).unwrap();

    let events = telemetry.drain();
    let net_rounds: Vec<_> = events.iter().filter(|e| e.name == "net.round").collect();
    assert_eq!(
        net_rounds.len(),
        out.report.substrate.rounds,
        "one net.round span per barrier round"
    );
    let arg = |e: &mmvc::substrate::TraceEvent, key: &str| {
        e.args
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("net.round missing arg {key}: {:?}", e.args))
            .1
    };
    let mut sent_total = 0u64;
    for (i, span) in net_rounds.iter().enumerate() {
        assert_eq!(span.kind, EventKind::Span);
        assert_eq!(arg(span, "round"), (i + 1) as u64, "spans arrive in order");
        assert!(arg(span, "bytes_recv") > 0, "every round gathers acks");
        sent_total += arg(span, "bytes_sent");
    }
    // Per-span byte tags cover at least the Data payloads (headers and
    // barrier frames come on top).
    assert!(sent_total as usize >= out.wire.data_payload_bytes);
}

/// The out-of-band pin extends over the wire: a distributed run's
/// canonical report bytes are identical with telemetry off and with a
/// recording sink attached — spans observe the transport, they never
/// perturb its accounting.
#[test]
fn distributed_reports_are_telemetry_invariant() {
    use mmvc::core::distributed::{run_distributed, DistOptions};

    let base = small_spec(AlgorithmKind::MpcMatching, "gnp-sparse");
    let plain = run_distributed(&base, &DistOptions::threads(2)).unwrap();
    let baseline = canonical_json(plain.report);

    let telemetry = Telemetry::recording();
    let mut spec = small_spec(AlgorithmKind::MpcMatching, "gnp-sparse");
    spec.executor = ExecutorConfig::sequential().with_telemetry(&telemetry);
    let traced = run_distributed(&spec, &DistOptions::threads(2)).unwrap();
    assert_eq!(
        canonical_json(traced.report),
        baseline,
        "distributed canonical bytes must not depend on telemetry"
    );
    assert!(
        telemetry.drain().iter().any(|e| e.name == "net.round"),
        "the sink must actually have recorded the transport"
    );
}

/// A recording sink can be muted and re-enabled in place; only the
/// enabled stretches record.
#[test]
fn set_enabled_gates_recording_in_place() {
    let telemetry = Telemetry::recording();
    telemetry.set_enabled(false);
    telemetry.counter("muted", 1);
    assert!(!telemetry.has_events());
    telemetry.set_enabled(true);
    telemetry.counter("live", 1);
    let events = telemetry.drain();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "live");
}
