//! Fault injection for the transport layer: a party crashing
//! mid-round, a truncated frame, and a corrupted checksum must each
//! surface as a `SubstrateError` naming the offending party and round,
//! fast — bounded accept/read deadlines mean the coordinator never
//! hangs, which is what lets CI run these under a timeout guard.

use std::time::{Duration, Instant};

use mmvc::core::distributed::{run_distributed, DistOptions};
use mmvc::core::run::{AlgorithmKind, RunSpec};
use mmvc::core::CoreError;
use mmvc::substrate::net::PartyFault;
use mmvc::substrate::SubstrateError;

// No space-factor override: the default memory split gives this spec 3
// metered rounds, so faults injected at rounds 1 and 2 both fire.
fn small_spec() -> RunSpec {
    let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
    spec.n = Some(96);
    spec.seed = 7;
    spec
}

fn fault_opts(parties: usize, party: usize, fault: PartyFault) -> DistOptions {
    let mut opts = DistOptions::threads(parties);
    // Tight but not racy: faults surface via EOF/corruption, not via
    // deadline expiry, so these only bound the worst case.
    opts.accept_timeout_ms = 5_000;
    opts.io_timeout_ms = 5_000;
    opts.fault = Some((party, fault));
    opts
}

/// Runs the faulted spec, asserting it fails fast, and returns the
/// transport error for inspection.
fn run_faulted(opts: &DistOptions) -> SubstrateError {
    let started = Instant::now();
    let err = run_distributed(&small_spec(), opts).unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "fault handling must never approach a hang"
    );
    match err {
        CoreError::Substrate(e) => e,
        other => panic!("expected a transport error, got: {other}"),
    }
}

#[test]
fn party_death_mid_round_names_party_and_round() {
    let e = run_faulted(&fault_opts(3, 1, PartyFault::DieAtRound(1)));
    match &e {
        SubstrateError::Net { party, round, .. } => {
            assert_eq!(*party, 1);
            assert_eq!(*round, 1);
        }
        other => panic!("expected Net error, got {other}"),
    }
    let s = e.to_string();
    assert!(s.contains("party 1") && s.contains("round 1"), "{s}");
}

#[test]
fn truncated_frame_names_party_and_round() {
    let e = run_faulted(&fault_opts(2, 0, PartyFault::TruncateAckAtRound(2)));
    match &e {
        SubstrateError::Net {
            party,
            round,
            message,
        } => {
            assert_eq!(*party, 0);
            assert_eq!(*round, 2);
            // Half an Ack frame then EOF: the decoder reports the
            // stream died mid-frame.
            assert!(message.contains("mid-frame"), "{message}");
        }
        other => panic!("expected Net error, got {other}"),
    }
}

#[test]
fn corrupted_checksum_names_party_and_round() {
    let e = run_faulted(&fault_opts(4, 3, PartyFault::CorruptChecksumAtRound(1)));
    match &e {
        SubstrateError::Net {
            party,
            round,
            message,
        } => {
            assert_eq!(*party, 3);
            assert_eq!(*round, 1);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected Net error, got {other}"),
    }
}

/// The same three faults through real `mmvc party --fault …` child
/// processes: the coordinator still fails fast with the diagnostic,
/// and the faulted child exits nonzero (reaped, never leaked).
#[test]
fn process_faults_fail_fast_with_diagnostics() {
    let exe = env!("CARGO_BIN_EXE_mmvc");
    let faults = [
        PartyFault::DieAtRound(1),
        PartyFault::CorruptChecksumAtRound(1),
        PartyFault::TruncateAckAtRound(1),
    ];
    for fault in faults {
        let mut opts = DistOptions::processes(2, exe);
        opts.accept_timeout_ms = 8_000;
        opts.io_timeout_ms = 8_000;
        opts.fault = Some((1, fault));
        let started = Instant::now();
        let err = run_distributed(&small_spec(), &opts).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "{fault:?}: must not hang"
        );
        let s = err.to_string();
        assert!(
            s.contains("party 1") && s.contains("round 1"),
            "{fault:?}: {s}"
        );
    }
}

/// A party that never connects trips the accept deadline with a
/// handshake diagnostic instead of blocking forever: the harness asks
/// for 2 parties but launches only… the coordinator side (threads mode
/// can't model an absent party, so this drives the substrate API
/// directly).
#[test]
fn missing_party_trips_the_accept_deadline() {
    use mmvc::substrate::net::{Coordinator, NetConfig, PartyRunner};
    use mmvc::substrate::Telemetry;

    let mut cfg = NetConfig::new(2);
    cfg.accept_timeout_ms = 300;
    cfg.io_timeout_ms = 2_000;
    let coord = Coordinator::bind(cfg).unwrap();
    let addr = coord.local_addr();
    let lone = std::thread::spawn(move || {
        let mut r = PartyRunner::new(0, 2, addr);
        r.io_timeout_ms = 2_000;
        r.run()
    });
    let started = Instant::now();
    let err = coord
        .run("mpc", 1, &[], &Telemetry::disabled())
        .unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(5), "accept hung");
    let s = err.to_string();
    assert!(s.contains("party 1") && s.contains("handshake"), "{s}");
    let _ = lone.join().unwrap();
}

/// Wrong-cluster protection: a party launched with a different party
/// count is rejected at the handshake, naming the party.
#[test]
fn party_count_mismatch_is_rejected_at_handshake() {
    use mmvc::substrate::net::{Coordinator, NetConfig, PartyRunner};
    use mmvc::substrate::Telemetry;

    let coord = Coordinator::bind(NetConfig::new(1)).unwrap();
    let addr = coord.local_addr();
    let liar = std::thread::spawn(move || {
        let mut r = PartyRunner::new(0, 5, addr);
        r.io_timeout_ms = 2_000;
        r.run()
    });
    let err = coord
        .run("mpc", 1, &[], &Telemetry::disabled())
        .unwrap_err();
    let s = err.to_string();
    assert!(s.contains("party 0") && s.contains("mismatch"), "{s}");
    let _ = liar.join().unwrap();
}

/// `mmvc party` pointed at a dead address exits nonzero with the
/// connection diagnostic on stderr — the CLI inherits the bounded-
/// deadline contract.
#[test]
fn cli_party_fails_fast_against_dead_coordinator() {
    let exe = env!("CARGO_BIN_EXE_mmvc");
    // Bind-then-drop: the port was just free, so nothing is listening.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let started = Instant::now();
    let out = std::process::Command::new(exe)
        .args([
            "party",
            "--addr",
            &dead_addr,
            "--party",
            "0",
            "--parties",
            "1",
            "--timeout-ms",
            "500",
        ])
        .output()
        .expect("spawn mmvc party");
    assert!(started.elapsed() < Duration::from_secs(10));
    assert!(!out.status.success(), "must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("could not connect"), "{stderr}");
}
