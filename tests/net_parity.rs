//! The PR's headline pin: a distributed run over real TCP parties
//! produces **byte-identical** canonical RunReports to the in-process
//! simulator, for the full metered MPC slice on {2, 4, 8} parties —
//! and the ledger's `total_words` equals the payload bytes that
//! actually crossed the wire, validating the simulator's accounting
//! against measured traffic for the first time.
//!
//! Thread-hosted parties cover the matrix; real `mmvc party` child
//! processes (spawned from the built binary) pin the multi-process
//! configuration the CLI ships. All harnesses bind port 0, so any
//! number of these tests run concurrently without colliding.

use mmvc::core::distributed::{run_distributed, DistOptions};
use mmvc::core::run::{run, AlgorithmKind, RunReport, RunSpec};
use mmvc::serve::canonical_report_body;

/// The metered MPC algorithms — the slice that can be distributed.
const DISTRIBUTABLE: [AlgorithmKind; 3] = [
    AlgorithmKind::GreedyMis,
    AlgorithmKind::MpcMatching,
    AlgorithmKind::Filtering,
];

fn small_spec(kind: AlgorithmKind) -> RunSpec {
    let mut spec = RunSpec::new(kind, "gnp-sparse");
    spec.n = Some(96);
    spec.seed = 7;
    spec.overrides.space_factor = Some(32.0);
    spec
}

fn canonical(report: &RunReport) -> Vec<u8> {
    canonical_report_body(report.clone())
}

/// The tentpole: every distributable kind, on 2, 4 and 8 parties,
/// reports byte-for-byte what the simulator reports — rounds,
/// max_load_words, total_words, the full per-round trace, and the
/// witnesses all travel through the canonical serialization.
#[test]
fn distributed_reports_are_byte_identical_across_party_counts() {
    for kind in DISTRIBUTABLE {
        let spec = small_spec(kind);
        let baseline = canonical(&run(&spec).unwrap());
        for parties in [2usize, 4, 8] {
            let out = run_distributed(&spec, &DistOptions::threads(parties)).unwrap();
            assert_eq!(
                canonical(&out.report),
                baseline,
                "{kind}/{parties} parties: distributed report must be byte-identical"
            );
            assert_eq!(
                canonical(&out.sim_report),
                baseline,
                "{kind}/{parties} parties: the charge recorder must be a pure observer"
            );
            // The wire cross-check: what the ledger charged is what was
            // actually framed as Data payload bytes (1 word ≡ 1 byte).
            assert_eq!(
                out.wire.data_payload_bytes, out.report.substrate.total_words,
                "{kind}/{parties} parties: ledger words must equal wire payload bytes"
            );
            assert!(
                out.wire.data_payload_bytes > 0,
                "{kind}/{parties} parties: a metered run must move real traffic"
            );
            assert!(
                out.wire.bytes_sent > out.wire.data_payload_bytes,
                "{kind}/{parties} parties: framing overhead must be accounted"
            );
        }
    }
}

/// Same pin through real OS processes: `mmvc party` children spawned
/// from the built binary, one per party.
#[test]
fn process_parties_match_the_simulator() {
    let exe = env!("CARGO_BIN_EXE_mmvc");
    for kind in [AlgorithmKind::GreedyMis, AlgorithmKind::MpcMatching] {
        let spec = small_spec(kind);
        let baseline = canonical(&run(&spec).unwrap());
        let out = run_distributed(&spec, &DistOptions::processes(4, exe)).unwrap();
        assert_eq!(
            canonical(&out.report),
            baseline,
            "{kind}: process-hosted parties must reproduce the simulator bytes"
        );
        assert_eq!(
            out.wire.data_payload_bytes,
            out.report.substrate.total_words
        );
    }
}

/// Distributed accounting is executor-invariant too: the charge script
/// recorded under a threaded executor replays to the same bytes as the
/// sequential one (the engine's determinism contract extends over the
/// wire).
#[test]
fn distributed_parity_is_executor_invariant() {
    use mmvc::substrate::ExecutorConfig;
    let mut seq = small_spec(AlgorithmKind::GreedyMis);
    seq.executor = ExecutorConfig::sequential();
    let mut thr = small_spec(AlgorithmKind::GreedyMis);
    thr.executor = ExecutorConfig::with_threads(4);

    let a = run_distributed(&seq, &DistOptions::threads(2)).unwrap();
    let b = run_distributed(&thr, &DistOptions::threads(2)).unwrap();
    assert_eq!(canonical(&a.report), canonical(&b.report));
    assert_eq!(a.wire.data_payload_bytes, b.wire.data_payload_bytes);
}

/// The port-collision satellite: harnesses bind port 0 and pass the
/// OS-assigned address to their parties, so two (here: four) full
/// harnesses running concurrently on one host never interfere — the
/// failure class the serve tests dodge ad hoc is fixed structurally.
#[test]
fn concurrent_harnesses_do_not_interfere() {
    let specs: Vec<(AlgorithmKind, usize)> = vec![
        (AlgorithmKind::GreedyMis, 2),
        (AlgorithmKind::GreedyMis, 4),
        (AlgorithmKind::MpcMatching, 2),
        (AlgorithmKind::Filtering, 3),
    ];
    let handles: Vec<_> = specs
        .into_iter()
        .map(|(kind, parties)| {
            std::thread::spawn(move || {
                let spec = small_spec(kind);
                let baseline = canonical(&run(&spec).unwrap());
                let out = run_distributed(&spec, &DistOptions::threads(parties)).unwrap();
                assert_eq!(canonical(&out.report), baseline, "{kind}/{parties}");
                assert_eq!(
                    out.wire.data_payload_bytes,
                    out.report.substrate.total_words
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("concurrent harness panicked");
    }
}

/// `mmvc net-run` end to end: its `--canonical` stdout equals `mmvc
/// run --canonical` for the same spec — the CLI pair the quickstart
/// documents is pinned to the same contract as the library entry.
#[test]
fn cli_net_run_matches_cli_run() {
    let exe = env!("CARGO_BIN_EXE_mmvc");
    let run_out = std::process::Command::new(exe)
        .args([
            "run",
            "greedy-mis",
            "gnp-sparse",
            "--n",
            "96",
            "--seed",
            "7",
            "--canonical",
        ])
        .output()
        .expect("mmvc run");
    assert!(run_out.status.success());

    let net_out = std::process::Command::new(exe)
        .args([
            "net-run",
            "greedy-mis",
            "gnp-sparse",
            "--n",
            "96",
            "--seed",
            "7",
            "--parties",
            "4",
            "--processes",
            "--canonical",
        ])
        .output()
        .expect("mmvc net-run");
    assert!(
        net_out.status.success(),
        "net-run failed: {}",
        String::from_utf8_lossy(&net_out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&net_out.stdout),
        String::from_utf8_lossy(&run_out.stdout),
        "net-run --canonical must emit the same bytes as run --canonical"
    );
    assert!(
        String::from_utf8_lossy(&net_out.stderr).contains("parity"),
        "net-run reports its parity self-check"
    );
}

/// Unmetered kinds are refused up front with a clear diagnostic rather
/// than replaying an empty script.
#[test]
fn unmetered_kinds_are_refused() {
    for kind in [
        AlgorithmKind::LubyMis,
        AlgorithmKind::CliqueMis,
        AlgorithmKind::Central,
    ] {
        let spec = small_spec(kind);
        let err = run_distributed(&spec, &DistOptions::threads(2)).unwrap_err();
        assert!(
            err.to_string().contains("not a metered MPC algorithm"),
            "{kind}: {err}"
        );
    }
}
