//! Integration tests composing the substrate primitives with the graph
//! layer: the GSZ11 bookkeeping steps the paper's algorithms delegate to
//! "standard techniques" must interoperate with real graph data.

use mmvc::graph::{generators, io, stats};
use mmvc::mpc::{mpc_aggregate_by_key, mpc_prefix_sum, mpc_sort, Cluster, MpcConfig, Substrate};

#[test]
fn sort_edge_list_by_degree_key() {
    // A typical MPC bookkeeping step: sort edges by (min endpoint degree).
    let g = generators::gnp(500, 0.05, 1).unwrap();
    let keys: Vec<u64> = g
        .edges()
        .iter()
        .map(|e| g.degree(e.u()).min(g.degree(e.v())) as u64)
        .collect();
    let mut cluster = Cluster::new(MpcConfig::near_linear(500, g.num_edges(), 8.0).unwrap());
    let sorted = mpc_sort(&mut cluster, &keys).unwrap();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(cluster.rounds(), 3, "sample sort is 3 metered rounds");
    assert!(cluster.max_load_words() <= cluster.config().words_per_machine());
}

#[test]
fn degree_histogram_via_aggregation() {
    // deg(v) computed as an MPC aggregation over edge endpoints must match
    // the graph layer's histogram.
    let g = generators::power_law(300, 2.5, 8.0, 2).unwrap();
    let pairs: Vec<(u64, u64)> = g
        .edges()
        .iter()
        .flat_map(|e| [(e.u() as u64, 1u64), (e.v() as u64, 1u64)])
        .collect();
    let mut cluster = Cluster::new(MpcConfig::new(16, 8 * 300).unwrap());
    let agg = mpc_aggregate_by_key(&mut cluster, &pairs).unwrap();
    for &(v, deg) in &agg {
        assert_eq!(deg as usize, g.degree(v as u32));
    }
    // Vertices with degree 0 are absent from the aggregation.
    let isolated = (0..300u32).filter(|&v| g.degree(v) == 0).count();
    assert_eq!(agg.len() + isolated, 300);
    let hist = stats::degree_histogram(&g);
    assert_eq!(hist.first().copied().unwrap_or(0), isolated);
}

#[test]
fn prefix_sums_assign_edge_offsets() {
    // CSR-style offset computation as a distributed prefix sum.
    let g = generators::gnp(200, 0.1, 3).unwrap();
    let degrees: Vec<u64> = (0..200u32).map(|v| g.degree(v) as u64).collect();
    let mut cluster = Cluster::new(MpcConfig::new(8, 4096).unwrap());
    let offsets = mpc_prefix_sum(&mut cluster, &degrees).unwrap();
    assert_eq!(*offsets.last().unwrap() as usize, 2 * g.num_edges());
}

#[test]
fn io_roundtrip_through_temp_file() {
    let g = generators::watts_strogatz(100, 6, 0.2, 4).unwrap();
    let path = std::env::temp_dir().join("mmvc_io_roundtrip_test.txt");
    {
        let file = std::fs::File::create(&path).unwrap();
        io::write_edge_list(&g, file).unwrap();
    }
    let back = io::read_edge_list(std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, back);
}

#[test]
fn parallel_round_computes_per_machine_degrees() {
    // Real-thread machine execution: each machine computes max degree over
    // its vertex share.
    let g = generators::gnp(400, 0.1, 5).unwrap();
    let machines = 8;
    let parts = mmvc::mpc::random_vertex_partition(&(0..400u32).collect::<Vec<_>>(), machines, 7);
    let mut cluster = Cluster::new(MpcConfig::new(machines, 8 * 400).unwrap());
    let maxima = cluster
        .parallel_round(machines, |m| {
            let local_max = parts[m].iter().map(|&v| g.degree(v)).max().unwrap_or(0);
            (local_max, parts[m].len())
        })
        .unwrap();
    assert_eq!(maxima.iter().copied().max().unwrap(), g.max_degree());
}
