//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the property-testing surface the mmvc crates use is
//! vendored here: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), the [`Strategy`] trait with
//! `prop_map`, strategies for ranges / tuples / [`any`] /
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the generated inputs carried by the assertion message. Case
//! generation is fully deterministic — seeded from the module path, test
//! name, and case index — so failures reproduce across runs.
//!
//! To switch to the real crate, replace the `proptest` entry in the
//! workspace `[workspace.dependencies]` table with a registry version.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case, seeded from the test identity
    /// and case index so runs are reproducible.
    pub fn for_case(module: &str, test: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(test.bytes()) {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 1),
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Widening multiply; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-loop configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps debug-profile CI fast
        // while still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Permitted sizes of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test module needs, in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property holds; supports an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts two values are equal; supports an optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts two values differ; supports an optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Binds `proptest!` parameters: `name in strategy` draws from the
/// strategy, `name: Type` draws from [`any::<Type>()`](any).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $name:ident: $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $name:ident: $ty:ty, $($rest:tt)+) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Expands each test function of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    ::std::module_path!(),
                    ::std::stringify!($name),
                    __case,
                );
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Declares property tests. Each `fn` runs once per generated case;
/// parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!((<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("m", "t", 3);
        let mut b = crate::TestRng::for_case("m", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..0.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in (1u64..5, 0u32..3).prop_map(|(a, b)| a as u32 + b)) {
            prop_assert!((1..8).contains(&v));
        }

        #[test]
        fn vecs_and_any(bits in crate::collection::vec(any::<bool>(), 2..6), seed: u64) {
            prop_assert!(bits.len() >= 2 && bits.len() < 6);
            let _ = seed;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x in 0usize..4) {
            prop_assert!(x < 4, "x = {x}");
            prop_assert_eq!(x / 4, 0);
            prop_assert_ne!(x, 9);
        }
    }
}
