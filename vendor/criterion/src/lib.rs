//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the benchmarking surface the `mmvc-bench` targets use is
//! vendored here. Timing is a straightforward wall-clock loop: after an
//! optional warm-up, each benchmark runs up to `sample_size` samples (or
//! until `measurement_time` elapses) and prints mean/min/max nanoseconds
//! per iteration.
//!
//! When the binary is invoked by `cargo test` (libtest passes `--test`),
//! every benchmark body executes exactly once — benches double as smoke
//! tests without burning CI time.
//!
//! To switch to the real crate, replace the `criterion` entry in the
//! workspace `[workspace.dependencies]` table with a registry version.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark result.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // libtest invokes bench targets with `--test`; honor it by running
        // each benchmark once (the real crate does the same).
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\ngroup {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(
            id,
            test_mode,
            10,
            Duration::from_secs(3),
            Duration::from_millis(500),
            &mut f,
        );
        self
    }
}

/// Identifies one benchmark within a group: a function name plus the
/// parameter value it was run with.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &id,
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_one(
            &id,
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under measurement.
#[derive(Debug)]
pub struct Bencher {
    mode: BencherMode,
    samples_ns: Vec<f64>,
}

#[derive(Debug)]
enum BencherMode {
    /// Run the routine once, don't time it (`cargo test`).
    Smoke,
    /// Sample up to `max_samples` or until `deadline`.
    Measure {
        max_samples: usize,
        deadline: Instant,
    },
}

impl Bencher {
    /// Measures `routine`, consuming samples until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BencherMode::Smoke => {
                black_box(routine());
            }
            BencherMode::Measure {
                max_samples,
                deadline,
            } => {
                for _ in 0..max_samples {
                    let start = Instant::now();
                    black_box(routine());
                    self.samples_ns.push(start.elapsed().as_nanos() as f64);
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    if test_mode {
        let mut b = Bencher {
            mode: BencherMode::Smoke,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        println!("bench {id} ... ok (smoke)");
        return;
    }
    // Warm-up: run the routine untimed until the warm-up budget elapses.
    let mut warm = Bencher {
        mode: BencherMode::Measure {
            max_samples: usize::MAX,
            deadline: Instant::now() + warm_up_time,
        },
        samples_ns: Vec::new(),
    };
    f(&mut warm);
    let mut b = Bencher {
        mode: BencherMode::Measure {
            max_samples: sample_size.max(1),
            deadline: Instant::now() + measurement_time,
        },
        samples_ns: Vec::new(),
    };
    f(&mut b);
    let s = &b.samples_ns;
    if s.is_empty() {
        println!("  {id}: no samples (routine never called iter)");
        return;
    }
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let min = s.iter().copied().fold(f64::INFINITY, f64::min);
    let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  {id}: mean {} min {} max {} ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        s.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { test_mode: false };
        demo(&mut c);
        let mut c = Criterion { test_mode: true };
        demo(&mut c);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert!(fmt_ns(1.2e4).contains("µs"));
        assert!(fmt_ns(3.4e7).contains("ms"));
        assert!(fmt_ns(2.5e9).contains(" s"));
    }
}
