//! Offline, API-compatible subset of the `rand` crate (0.8 series).
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the few `rand` APIs the workspace uses are vendored here.
//! The implementation mirrors `rand` 0.8.5 **bit for bit** for the paths
//! used (`SmallRng` = xoshiro256++ with SplitMix64 `seed_from_u64`,
//! `Standard` float/bool sampling, widening-multiply uniform integers, and
//! the `[1, 2)`-mantissa uniform floats), so seeded results — including the
//! regression pins in `tests/regression.rs` — match what the real crate
//! would produce.
//!
//! Only the surface the workspace needs is provided; this is not a general
//! replacement for `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (only [`rngs::SmallRng`] is provided).
pub mod rngs {
    /// A small, fast RNG: xoshiro256++, exactly as in `rand` 0.8.5 on
    /// 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let res = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);

            let t = self.s[1] << 17;

            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;

            self.s[3] = self.s[3].rotate_left(45);

            res
        }
    }
}

use rngs::SmallRng;

/// A random number generator core: the raw output streams.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // The lowest bits of xoshiro256++ have linear dependencies; use the
        // upper bits (matches rand 0.8.5).
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Seedable construction of generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64 state expansion,
    /// matching rand 0.8.5's xoshiro seeding).
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *word = z;
        }
        SmallRng::from_state(s)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1), as in rand 0.8's Standard.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign test on the most significant bit (matches rand 0.8).
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges from which a single uniform value can be drawn
/// (`Rng::gen_range`'s argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// 64-bit widening multiply: `(hi, lo)` of `a * b`.
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let m = (a as u128) * (b as u128);
    ((m >> 64) as u64, m as u64)
}

/// 32-bit widening multiply: `(hi, lo)` of `a * b`.
#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let m = (a as u64) * (b as u64);
    ((m >> 32) as u32, m as u32)
}

macro_rules! uniform_int_64 {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if range == 0 {
                    // The range spans the whole domain.
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let (hi, lo) = wmul64(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_64!(u64);
uniform_int_64!(usize);
uniform_int_64!(i64);

macro_rules! uniform_int_32 {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high as u32).wrapping_sub(low as u32).wrapping_add(1);
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let (hi, lo) = wmul32(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_32!(u32);
uniform_int_32!(i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range");
        let scale = high - low;
        loop {
            // A value in [1, 2): exponent of 1.0 with 52 random mantissa
            // bits, exactly as in rand 0.8's UniformFloat.
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        let scale = (high - low) / (1.0 - f64::EPSILON / 2.0);
        loop {
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res <= high {
                return res;
            }
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 1usize..100 {
            let x = rng.gen_range(0..i);
            assert!(x < i);
            let y = rng.gen_range(0..=i);
            assert!(y <= i);
            let z = rng.gen_range(0u32..i as u32);
            assert!((z as usize) < i);
        }
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn small_ranges_hit_everything() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(4);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((350..650).contains(&trues), "trues = {trues}");
    }
}
